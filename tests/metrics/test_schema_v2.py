"""Tests for metrics JSONL schema v2: latency histograms, version
compatibility (v1 reads cleanly, unknown futures warn once), and the
service self-report event round-trip."""

import json

import pytest

from repro.metrics import (
    KNOWN_SCHEMA_VERSIONS,
    LatencyHistogram,
    MetricsSink,
    SCHEMA_VERSION,
    summarize,
    warn_unknown_schema,
)
from repro.metrics.histogram import (
    bucket_index,
    bucket_upper_seconds,
    format_histogram_table,
)


class TestLatencyHistogram:
    def test_bucket_index_log2_micros(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-6) == 0
        assert bucket_index(2e-6) == 1
        assert bucket_index(1.0) == bucket_index(1.0)
        # Monotone in the sample value.
        last = -1
        for micros in [1, 2, 5, 100, 10_000, 5_000_000]:
            index = bucket_index(micros * 1e-6)
            assert index >= last
            last = index

    def test_bucket_upper_bounds_contain_their_samples(self):
        for seconds in [1e-7, 3e-6, 0.004, 1.5]:
            index = bucket_index(seconds)
            assert seconds <= bucket_upper_seconds(index) + 1e-12

    def test_record_and_summary(self):
        hist = LatencyHistogram()
        for ms in [1, 2, 4, 100]:
            hist.record(ms / 1000.0)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["max_ms"] == pytest.approx(100.0)
        assert 0 < summary["p50_ms"] <= summary["p99_ms"] <= 2 * 100.0

    def test_quantile_bucket_error_bounded(self):
        hist = LatencyHistogram()
        for _ in range(1000):
            hist.record(0.010)
        # All mass in one bucket: any quantile lands within 2x the value.
        assert 0.010 <= hist.quantile(0.5) <= 0.020
        assert hist.quantile(0.0) == pytest.approx(0.010)
        assert hist.quantile(1.0) == pytest.approx(0.010)

    def test_negative_samples_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.min_seconds == 0.0

    def test_merge_is_exact(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for ms in [1, 5, 9]:
            a.record(ms / 1000.0)
        for ms in [2, 100]:
            b.record(ms / 1000.0)
        a.merge(b)
        assert a.count == 5
        assert a.max_seconds == pytest.approx(0.1)
        assert sum(a.buckets.values()) == 5

    def test_dict_round_trip(self):
        hist = LatencyHistogram()
        for ms in [1, 2, 300]:
            hist.record(ms / 1000.0)
        back = LatencyHistogram.from_dict(hist.to_dict())
        assert back.to_dict() == hist.to_dict()
        assert back.summary() == hist.summary()

    def test_format_table_rows_sorted(self):
        hist = LatencyHistogram()
        hist.record(0.005)
        rows = format_histogram_table(
            {"z.span": hist, "a.span": hist}
        )
        assert [name for name, _ in rows] == ["a.span", "z.span"]
        assert rows[0][1]["count"] == 1


class TestSchemaVersions:
    def test_v2_declared_and_known(self):
        assert SCHEMA_VERSION == 2
        assert SCHEMA_VERSION in KNOWN_SCHEMA_VERSIONS
        assert 1 in KNOWN_SCHEMA_VERSIONS

    def test_v1_file_reads_cleanly(self, tmp_path, capsys):
        # A file written by the v1 writer: schema record, stage events,
        # trailing counters — no histograms record.
        path = tmp_path / "v1.jsonl"
        lines = [
            {"event": "schema", "version": 1},
            {"event": "stage", "stage": "layout", "dt": 0.25, "t": 1.0,
             "pid": 1},
            {"event": "counters", "counters": {"simulate.cycles": 42}},
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        sink = MetricsSink.read_jsonl(path)
        assert sink.schema_version == 1
        assert sink.counters == {"simulate.cycles": 42}
        assert sink.stage_seconds["layout"] == pytest.approx(0.25)
        assert sink.histograms == {}
        assert capsys.readouterr().err == ""  # known version: no warning
        # And it summarizes cleanly.
        summary = summarize(sink)
        assert summary["counters"]["simulate.cycles"] == 42
        assert summary["histograms"] == {}

    def test_unknown_future_version_warns_once(self, tmp_path, capsys):
        future = 9999
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"event": "schema", "version": future}) + "\n"
            + json.dumps({"event": "counters", "counters": {"n": 1}}) + "\n"
        )
        sink = MetricsSink.read_jsonl(path)
        assert sink.counters == {"n": 1}  # best-effort parse still works
        err = capsys.readouterr().err
        assert "9999" in err
        # Second read of the same version: silent (warn once per process).
        MetricsSink.read_jsonl(path)
        assert capsys.readouterr().err == ""

    def test_warn_unknown_schema_known_versions_silent(self, capsys):
        assert warn_unknown_schema(None) is False
        for version in KNOWN_SCHEMA_VERSIONS:
            assert warn_unknown_schema(version) is False
        assert capsys.readouterr().err == ""

    def test_histograms_record_round_trips(self, tmp_path):
        sink = MetricsSink()
        for ms in [1, 3, 7, 200]:
            sink.observe("service.request.total", ms / 1000.0)
        sink.observe("service.cache.probe", 0.0001)
        path = tmp_path / "v2.jsonl"
        sink.write_jsonl(path)
        back = MetricsSink.read_jsonl(path)
        assert back.schema_version == SCHEMA_VERSION
        assert set(back.histograms) == {
            "service.request.total",
            "service.cache.probe",
        }
        assert (
            back.histograms["service.request.total"].summary()
            == sink.histograms["service.request.total"].summary()
        )

    def test_no_histograms_means_v1_shaped_file(self, tmp_path):
        # A v2 file without observations has exactly the v1 line shape:
        # schema + events + counters (reader-compatible both ways).
        sink = MetricsSink()
        sink.add("n", 1)
        path = tmp_path / "empty.jsonl"
        lines = sink.write_jsonl(path)
        assert lines == len(sink.events) + 2
        kinds = [
            json.loads(line)["event"] for line in path.read_text().splitlines()
        ]
        assert kinds == ["schema", "counters"]

    def test_merge_folds_histograms(self):
        a, b = MetricsSink(), MetricsSink()
        a.observe("span", 0.001)
        b.observe("span", 0.002)
        b.observe("other", 0.003)
        a.merge(b)
        assert a.histograms["span"].count == 2
        assert a.histograms["other"].count == 1

    def test_self_report_event_round_trips(self, tmp_path):
        # The shape the daemon's periodic self-report writes.
        sink = MetricsSink()
        sink.add("service.requests", 3)
        sink.observe("service.request.total", 0.050)
        sink.event(
            "service.self_report",
            final=False,
            uptime_seconds=12.5,
            counters=dict(sink.counters),
            histograms={
                name: hist.summary()
                for name, hist in sink.histograms.items()
            },
            inflight_tasks=0,
            inflight_profiles=0,
        )
        path = tmp_path / "svc.jsonl"
        sink.write_jsonl(path)
        back = MetricsSink.read_jsonl(path)
        (event,) = [
            e for e in back.events if e["event"] == "service.self_report"
        ]
        assert event["uptime_seconds"] == 12.5
        assert event["counters"] == {"service.requests": 3}
        assert event["histograms"]["service.request.total"]["count"] == 1
        assert back.histograms["service.request.total"].count == 1
