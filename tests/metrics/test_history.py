"""Tests for the bench history store and its median/MAD tripwire."""

import json
import threading

import pytest

from repro.metrics import (
    HistoryStore,
    check_history,
    fingerprint_id,
    format_history_check,
    format_history_list,
    format_history_show,
    machine_fingerprint,
    noise_band,
)
from repro.metrics.history import MIN_RUNS_FOR_BAND, mad, median


def _report(value, metric=("speedup_vs_serial", "cache_warm")):
    section, key = metric
    return {section: {key: value}}


class TestStore:
    def test_append_and_read_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        record = store.append(_report(4.0), sha="abc", timestamp=100.0)
        assert record["schema"] == 1
        assert record["sha"] == "abc"
        assert record["fingerprint_id"] == fingerprint_id(
            record["fingerprint"]
        )
        (back,) = store.records()
        assert back == record

    def test_records_are_chronological(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i, value in enumerate([4.0, 4.1, 3.9]):
            store.append(_report(value), sha=f"sha{i}", timestamp=float(i))
        assert [r["sha"] for r in store.records()] == ["sha0", "sha1", "sha2"]

    def test_series_extracts_dotted_metric(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        store.append(_report(4.0), timestamp=0.0)
        store.append({"unrelated": 1}, timestamp=1.0)  # metric absent: skipped
        store.append(_report(4.2), timestamp=2.0)
        pairs = store.series("speedup_vs_serial.cache_warm")
        assert [value for _, value in pairs] == [4.0, 4.2]

    def test_series_last_window(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i in range(6):
            store.append(_report(float(i)), timestamp=float(i))
        pairs = store.series("speedup_vs_serial.cache_warm", last=2)
        assert [value for _, value in pairs] == [4.0, 5.0]

    def test_source_filter(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        store.append(_report(4.0), source="perf_smoke", timestamp=0.0)
        store.append(_report(9.0), source="service_smoke", timestamp=1.0)
        assert len(store.records(source="perf_smoke")) == 1
        assert len(store.records(source="service_smoke")) == 1
        assert len(store.records()) == 2

    def test_fingerprint_filter_separates_machines(self, tmp_path):
        # Two machines must never pool into one noise estimate.
        store = HistoryStore(tmp_path / "h.jsonl")
        laptop = {"cpu_count": 8, "platform": "x", "python": "3.12.0"}
        ci = {"cpu_count": 2, "platform": "y", "python": "3.12.0"}
        store.append(_report(4.0), fingerprint=laptop, timestamp=0.0)
        store.append(_report(1.0), fingerprint=ci, timestamp=1.0)
        pairs = store.series(
            "speedup_vs_serial.cache_warm",
            fingerprint=fingerprint_id(laptop),
        )
        assert [value for _, value in pairs] == [4.0]

    def test_keep_prunes_oldest(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i in range(5):
            store.append(_report(float(i)), sha=f"s{i}", keep=3)
        assert [r["sha"] for r in store.records()] == ["s2", "s3", "s4"]

    def test_malformed_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = HistoryStore(path)
        store.append(_report(4.0), timestamp=0.0)
        with open(path, "a") as fh:
            fh.write("{truncated garbage\n")
            fh.write('{"not": "a history record"}\n')
        store2 = HistoryStore(path)
        assert len(store2.records()) == 1
        assert store2.skipped_lines == 2

    def test_append_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        store.append(_report(4.0))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        # Every line in the written file parses.
        with open(store.path) as fh:
            assert all(json.loads(line) for line in fh)

    def test_missing_file_reads_empty(self, tmp_path):
        store = HistoryStore(tmp_path / "absent.jsonl")
        assert store.records() == []
        assert store.series("a.b") == []

    def test_append_creates_missing_parent_directory(self, tmp_path):
        # A cold CI cache starts with no .ci-history directory at all;
        # the first append must create it, not crash in mkstemp.
        store = HistoryStore(tmp_path / "ci" / "nested" / "h.jsonl")
        store.append(_report(4.0), timestamp=0.0)
        assert len(store.records()) == 1

    def test_atomic_write_creates_missing_parent_directory(self, tmp_path):
        from repro.metrics import atomic_write_text

        target = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(target, "{}\n")
        assert target.read_text() == "{}\n"

    def test_concurrent_appends_drop_no_record(self, tmp_path):
        # Two writers pointed at one --history file (perf_smoke and
        # service_smoke run in parallel locally) must serialize the
        # read-rewrite cycle instead of silently losing a run.
        path = tmp_path / "h.jsonl"
        n = 8

        def worker(i):
            HistoryStore(path).append(
                _report(float(i)), sha=f"s{i}", timestamp=float(i)
            )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(HistoryStore(path).records()) == n

    def test_machine_fingerprint_shape(self):
        fp = machine_fingerprint()
        assert set(fp) == {
            "cpu_count",
            "platform",
            "python",
            "implementation",
        }
        assert len(fingerprint_id(fp)) == 12


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_resists_one_outlier(self):
        values = [4.0, 4.1, 3.9, 4.0, 100.0]
        assert mad(values) == pytest.approx(0.1)

    def test_stable_metric_gets_relative_floor_band(self):
        # MAD of identical values is 0; the 5% floor keeps the band open.
        low, center, high = noise_band([4.0, 4.0, 4.0])
        assert center == 4.0
        assert low == pytest.approx(3.8)
        assert high == pytest.approx(4.2)

    def test_noisy_metric_gets_wide_band_automatically(self):
        tight = noise_band([4.0, 4.05, 3.95])
        loose = noise_band([3.0, 4.4, 2.9, 4.2])
        assert (tight[2] - tight[0]) < (loose[2] - loose[0])


class TestHistoryTripwire:
    METRIC = "speedup_vs_serial.cache_warm"

    def _seed(self, tmp_path, values, metric=None):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i, value in enumerate(values):
            report = _report(value)
            if metric is not None:
                report = {}
                node = report
                parts = metric.split(".")
                for part in parts[:-1]:
                    node = node.setdefault(part, {})
                node[parts[-1]] = value
            store.append(report, sha=f"s{i}", timestamp=float(i))
        return store

    def test_acceptance_scenario(self, tmp_path):
        """The ISSUE's acceptance check: over >=3 synthetic runs an
        injected 30% regression on a stable metric is flagged, while a
        noisy metric whose MAD band covers the same swing passes."""
        stable = self._seed(tmp_path, [4.0, 4.05, 3.95, 4.0])
        checks = check_history(_report(4.0 * 0.7), stable)
        verdicts = {c.metric: c for c in checks}
        assert verdicts[self.METRIC].status == "regressed"
        assert verdicts[self.METRIC].failed

        noisy_store = HistoryStore(tmp_path / "noisy.jsonl")
        for i, value in enumerate([3.0, 4.4, 2.9, 4.2]):
            noisy_store.append(_report(value), timestamp=float(i))
        checks = check_history(_report(3.6 * 0.7), noisy_store)
        verdicts = {c.metric: c for c in checks}
        assert verdicts[self.METRIC].status == "ok"

    def test_insufficient_runs_reported_for_fallback(self, tmp_path):
        store = self._seed(tmp_path, [4.0, 4.1])
        assert len([4.0, 4.1]) < MIN_RUNS_FOR_BAND
        checks = check_history(_report(1.0), store)
        verdicts = {c.metric: c for c in checks}
        assert verdicts[self.METRIC].status == "insufficient"
        assert not verdicts[self.METRIC].failed  # falls back, never fails

    def test_metric_missing_from_current(self, tmp_path):
        store = self._seed(tmp_path, [4.0, 4.1, 3.9])
        checks = check_history({}, store)
        assert all(c.status == "missing" for c in checks)
        assert not any(c.failed for c in checks)

    def test_inverse_metric_fails_above_band(self, tmp_path):
        metric = "scheduler.gap_from_optimal"
        store = self._seed(tmp_path, [0.01, 0.012, 0.011], metric=metric)
        ok = check_history(
            {"scheduler": {"gap_from_optimal": 0.011}}, store
        )
        bad = check_history(
            {"scheduler": {"gap_from_optimal": 0.5}}, store
        )
        assert {c.metric: c.status for c in ok}[metric] == "ok"
        assert {c.metric: c.status for c in bad}[metric] == "regressed"

    def test_improvement_never_fails(self, tmp_path):
        store = self._seed(tmp_path, [4.0, 4.05, 3.95])
        checks = check_history(_report(8.0), store)
        assert {c.metric: c.status for c in checks}[self.METRIC] == "ok"

    def test_window_drops_ancient_runs(self, tmp_path):
        # Ten ancient slow runs then three fast ones: a window of 3 bands
        # on the recent regime only.
        store = self._seed(
            tmp_path, [1.0] * 10 + [4.0, 4.05, 3.95]
        )
        checks = check_history(_report(3.9), store, window=3)
        assert {c.metric: c.status for c in checks}[self.METRIC] == "ok"
        checks = check_history(_report(1.0), store, window=3)
        assert {c.metric: c.status for c in checks}[self.METRIC] == (
            "regressed"
        )


class TestRendering:
    def test_format_history_check_marks_failures(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i, value in enumerate([4.0, 4.05, 3.95]):
            store.append(_report(value), timestamp=float(i))
        text = format_history_check(check_history(_report(2.0), store))
        assert "REGRESSED" in text
        assert "insufficient" in text or "missing" in text

    def test_format_history_list_and_show(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        for i, value in enumerate([4.0, 4.05, 3.95]):
            store.append(_report(value), sha=f"sha{i}ffffffff", timestamp=float(i))
        listed = format_history_list(store.records())
        assert "sha0" in listed and "perf_smoke" in listed
        shown = format_history_show(store, "speedup_vs_serial.cache_warm")
        assert "4.0500" in shown
        assert "MAD band" in shown

    def test_format_history_show_empty(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        assert "no recorded values" in format_history_show(store, "a.b")


class TestCLIFingerprintDefault:
    """``history check`` (and ``report --check-bench --history``) band on
    this machine's runs only; ``--all-machines`` pools everything."""

    def _seed_two_machines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = HistoryStore(path)
        other = {"cpu_count": 1, "platform": "other-os", "python": "0.0.0"}
        # Another machine's runs sit near 40; this machine's near 4.
        for i, value in enumerate([40.0, 41.0, 39.0]):
            store.append(_report(value), fingerprint=other, timestamp=float(i))
        for i, value in enumerate([4.0, 4.05, 3.95]):
            store.append(_report(value), timestamp=float(3 + i))
        report_path = tmp_path / "current.json"
        report_path.write_text(json.dumps(_report(1.0)))
        return path, report_path

    def test_history_check_defaults_to_this_machine(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path, report_path = self._seed_two_machines(tmp_path)
        # Against this machine's tight band [~3.8, ~4.2], 1.0 regresses.
        assert (
            main(["history", "check", str(report_path), "--history", str(path)])
            == 1
        )
        # Pooled across machines the band is enormous and 1.0 passes —
        # exactly the skew the per-machine default prevents.
        assert (
            main(
                [
                    "history",
                    "check",
                    str(report_path),
                    "--history",
                    str(path),
                    "--all-machines",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_report_check_bench_defaults_to_this_machine(
        self, tmp_path, capsys
    ):
        from repro.experiments.__main__ import main

        path, report_path = self._seed_two_machines(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_report(4.0)))
        argv = [
            "report",
            "--check-bench",
            str(report_path),
            "--baseline",
            str(baseline),
            "--history",
            str(path),
        ]
        assert main(argv) == 1
        # --all-machines: six pooled runs band the metric, and the huge
        # cross-machine MAD swallows 1.0, so the check passes outright.
        assert main(argv + ["--all-machines"]) == 0
        capsys.readouterr()
