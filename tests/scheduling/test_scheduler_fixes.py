"""Regression tests for the list-scheduler bugfix fleet.

Covers the dependence-graph duplicate-edge handling, the machine-model
latency contract, priority-weight tie-break determinism, and
``verify_schedule``'s non-unit-latency checking — each pinned down by the
scheduler-quality PR so they cannot silently regress.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import compute_liveness
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, Opcode, build_program
from repro.scheduling import (
    MachineModel,
    PAPER_MACHINE,
    REALISTIC_MACHINE,
    ScheduleWeights,
    build_dependence_graph,
    extract_superblock_code,
    schedule_superblock,
    verify_schedule,
)


def build_code(make_blocks, machine=PAPER_MACHINE):
    fb = FunctionBuilder("main")
    labels = make_blocks(fb)
    program = build_program(fb)
    proc = program.procedure("main")
    liveness = compute_liveness(proc)
    sb = Superblock("main", labels)
    return extract_superblock_code(proc, sb, liveness)


class TestDuplicateEdgeHandling:
    """Satellite 1: duplicate (src, dst) edges collapse to the max
    latency, atomically in both adjacency views."""

    def code_with_duplicate_edge(self):
        # mul defines r; the next instruction both *reads* r (true
        # dependence, latency = mul's result latency) and *redefines* it
        # (output dependence, latency 1): two adds of the same edge pair
        # with different latencies.
        def blocks(fb):
            b = fb.block("entry")
            r, s = fb.regs(2)
            b.li(r, 3)
            b.li(s, 4)
            b.mul(r, r, s)
            b.add(r, r, s)
            b.print_(r)
            b.ret()
            return ["entry"]

        return build_code(blocks)

    def test_single_edge_with_max_latency(self):
        code = self.code_with_duplicate_edge()
        graph = build_dependence_graph(code, REALISTIC_MACHINE)
        mul_latency = REALISTIC_MACHINE.latency(Opcode.MUL)
        assert mul_latency > 1
        edges = [(j, lat) for j, lat in graph.succs[2] if j == 3]
        # One edge, not one per dependence kind, carrying the larger
        # (true-dependence) latency, not the output dependence's 1.
        assert edges == [(3, mul_latency)]

    def test_preds_mirror_succs_exactly(self):
        code = self.code_with_duplicate_edge()
        for machine in (PAPER_MACHINE, REALISTIC_MACHINE):
            graph = build_dependence_graph(code, machine)
            from_succs = {
                (i, j, lat)
                for i in range(graph.size)
                for j, lat in graph.succs[i]
            }
            from_preds = {
                (i, j, lat)
                for j in range(graph.size)
                for i, lat in graph.preds[j]
            }
            assert from_succs == from_preds

    def test_no_duplicate_pairs_anywhere(self):
        code = self.code_with_duplicate_edge()
        graph = build_dependence_graph(code, REALISTIC_MACHINE)
        for i in range(graph.size):
            targets = [j for j, _ in graph.succs[i]]
            assert len(targets) == len(set(targets))


class TestMachineLatencyContract:
    """Satellite 2: result latencies are >= 1, enforced at construction."""

    def test_zero_latency_override_raises(self):
        with pytest.raises(ValueError, match="latency override"):
            MachineModel(latencies={Opcode.MUL: 0}, name="bad")

    def test_negative_latency_override_raises(self):
        with pytest.raises(ValueError):
            MachineModel(latencies={Opcode.LOAD: -2}, name="bad")

    def test_valid_overrides_accepted(self):
        machine = MachineModel(latencies={Opcode.MUL: 3}, name="ok")
        assert machine.latency(Opcode.MUL) == 3
        assert machine.latency(Opcode.ADD) == 1

    def test_latency_zero_edges_still_exist_in_graph(self):
        # The contract is about result latencies; latency-0 *edges*
        # (anti-dependences) are a graph concept and remain.
        def blocks(fb):
            b = fb.block("entry")
            r, s, t = fb.regs(3)
            b.li(r, 1)
            b.add(s, r, r)
            b.li(r, 2)  # anti-dependence add(s,...) -> li(r, 2)
            b.add(t, s, r)
            b.print_(t)
            b.ret()
            return ["entry"]

        code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        assert (2, 0) in graph.succs[1]  # anti edge, latency 0


def _fingerprint(schedule):
    return tuple((op.orig_index, op.cycle, op.slot) for op in schedule.ops)


def _wide_code(seed=0, n=24):
    """A deterministic pseudo-random code with many equal-priority ops."""
    import random

    rng = random.Random(seed)

    def blocks(fb):
        b = fb.block("entry")
        regs = fb.regs(n)
        for i, r in enumerate(regs):
            if i >= 4 and rng.random() < 0.5:
                b.add(r, regs[rng.randrange(i)], regs[rng.randrange(i)])
            else:
                b.li(r, i)
        b.print_(regs[-1])
        b.ret()
        return ["entry"]

    return build_code(blocks)


class TestTieBreakDeterminism:
    """Satellite 3: program-order tie-breaks survive any reweighting."""

    def test_same_weights_same_schedule(self):
        weights = ScheduleWeights(height=1.3, slack=0.4, path=0.2)
        for seed in range(6):
            code = _wide_code(seed)
            a = schedule_superblock(code, PAPER_MACHINE, weights=weights)
            b = schedule_superblock(code, PAPER_MACHINE, weights=weights)
            assert _fingerprint(a) == _fingerprint(b)

    def test_pure_scaling_is_identity(self):
        # Scaling every priority by the same factor preserves the order
        # (ties included), so the schedule must be byte-identical to the
        # untuned one.
        for seed in range(6):
            code = _wide_code(seed)
            base = schedule_superblock(code, PAPER_MACHINE)
            scaled = schedule_superblock(
                code, PAPER_MACHINE, weights=ScheduleWeights(height=2.0)
            )
            assert _fingerprint(base) == _fingerprint(scaled)

    def test_default_weights_take_untuned_path(self):
        for seed in range(4):
            code = _wide_code(seed)
            a = schedule_superblock(code, PAPER_MACHINE)
            b = schedule_superblock(
                code, PAPER_MACHINE, weights=ScheduleWeights()
            )
            assert _fingerprint(a) == _fingerprint(b)

    def test_stable_across_hash_seeds(self):
        # Iteration order of any set/dict the scheduler touches must not
        # leak into the schedule: the fingerprint is identical under
        # different PYTHONHASHSEED values (fresh interpreters).
        script = textwrap.dedent(
            """
            from tests.scheduling.test_scheduler_fixes import (
                _fingerprint,
                _wide_code,
            )
            from repro.scheduling import (
                PAPER_MACHINE,
                ScheduleWeights,
                schedule_superblock,
            )

            weights = ScheduleWeights(height=1.3, slack=0.4, path=0.2)
            for seed in range(4):
                code = _wide_code(seed)
                print(
                    _fingerprint(
                        schedule_superblock(
                            code, PAPER_MACHINE, weights=weights
                        )
                    )
                )
            """
        )
        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(
                    os.path.dirname(os.path.dirname(__file__))
                ),
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


class TestVerifyScheduleLatencies:
    """Satellite 4: ``verify_schedule`` checks non-unit latencies and
    reports violations instead of waving them through."""

    def latency_code(self):
        def blocks(fb):
            b = fb.block("entry")
            a, c, d = fb.regs(3)
            b.li(a, 5)
            b.mul(c, a, a)
            b.add(d, c, a)  # needs mul's 3-cycle result
            b.print_(d)
            b.ret()
            return ["entry"]

        return build_code(blocks)

    def test_legal_schedule_is_clean(self):
        code = self.latency_code()
        schedule = schedule_superblock(code, REALISTIC_MACHINE)
        assert verify_schedule(schedule) == []
        mul = next(
            op for op in schedule.ops if op.instr.opcode is Opcode.MUL
        )
        add = next(
            op for op in schedule.ops if op.instr.opcode is Opcode.ADD
        )
        assert add.cycle - mul.cycle >= REALISTIC_MACHINE.latency(Opcode.MUL)

    def test_latency_violation_is_reported(self):
        code = self.latency_code()
        schedule = schedule_superblock(code, REALISTIC_MACHINE)
        add = next(
            op for op in schedule.ops if op.instr.opcode is Opcode.ADD
        )
        mul = next(
            op for op in schedule.ops if op.instr.opcode is Opcode.MUL
        )
        # Tamper: pull the consumer up to one cycle after the multiply,
        # inside its 3-cycle result latency.
        schedule.bundles[add.cycle].remove(add)
        add.cycle = mul.cycle + 1
        schedule.bundles[add.cycle].append(add)
        problems = verify_schedule(schedule)
        assert any("violated" in p for p in problems)

    def test_width_violation_is_reported(self):
        code = self.latency_code()
        narrow = MachineModel(issue_width=1, name="w1")
        schedule = schedule_superblock(code, narrow)
        assert verify_schedule(schedule) == []
        # Cram two ops into one cycle on a 1-wide machine.
        victim = schedule.bundles[1][0]
        schedule.bundles[1].remove(victim)
        victim.cycle = 0
        schedule.bundles[0].append(victim)
        problems = verify_schedule(schedule)
        assert any("ops issued" in p or "violated" in p for p in problems)
