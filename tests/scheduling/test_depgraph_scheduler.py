"""Tests for the dependence graph and the top-down cycle scheduler."""

import pytest

from repro.analysis import compute_liveness
from repro.formation import form_superblocks, scheme
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, Opcode, build_program
from repro.ir import instructions as ins
from repro.profiling import collect_profiles
from repro.scheduling import (
    MachineModel,
    PAPER_MACHINE,
    REALISTIC_MACHINE,
    build_dependence_graph,
    extract_superblock_code,
    schedule_superblock,
    verify_schedule,
)
from repro.scheduling.renaming import rename_superblock

from tests.support import diamond_program, figure3_loop_program


def build_code(make_blocks):
    """Helper: make_blocks(fb) -> list of labels forming one superblock."""
    fb = FunctionBuilder("main")
    labels = make_blocks(fb)
    program = build_program(fb)
    proc = program.procedure("main")
    liveness = compute_liveness(proc)
    sb = Superblock("main", labels)
    return proc, extract_superblock_code(proc, sb, liveness)


def straightline(fb):
    b = fb.block("entry")
    a, bb, c = fb.regs(3)
    b.li(a, 1)
    b.li(bb, 2)
    b.add(c, a, bb)
    b.print_(c)
    b.ret()
    return ["entry"]


class TestDepGraph:
    def test_true_dependence(self):
        proc, code = build_code(straightline)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        # add (index 2) depends on both li's.
        preds = {src for src, _ in graph.preds[2]}
        assert {0, 1} <= preds

    def test_latency_respects_machine(self):
        def blocks(fb):
            b = fb.block("entry")
            a, bb, c = fb.regs(3)
            b.li(a, 3)
            b.li(bb, 4)
            b.mul(c, a, bb)
            b.print_(c)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, REALISTIC_MACHINE)
        lat = {src: l for src, l in graph.preds[3]}
        assert lat[2] == REALISTIC_MACHINE.latency(Opcode.MUL)

    def test_store_load_ordering(self):
        def blocks(fb):
            b = fb.block("entry")
            addr, v, out = fb.regs(3)
            b.li(addr, 10)
            b.li(v, 42)
            b.store(addr, v)
            b.load(out, addr)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        assert any(src == 2 and lat >= 1 for src, lat in graph.preds[3])

    def test_loads_not_ordered_with_loads(self):
        def blocks(fb):
            b = fb.block("entry")
            a1, a2, o1, o2 = fb.regs(4)
            b.li(a1, 10)
            b.li(a2, 20)
            b.load(o1, a1)
            b.load(o2, a2)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        assert not any(src == 2 for src, _ in graph.preds[3])

    def test_prints_ordered(self):
        def blocks(fb):
            b = fb.block("entry")
            a = fb.reg()
            b.li(a, 1)
            b.print_(a)
            b.print_(a)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        assert any(src == 1 and lat == 1 for src, lat in graph.preds[2])

    def test_side_effect_pinned_below_branch(self):
        def blocks(fb):
            entry = fb.block("entry")
            out = fb.block("out")
            nxt = fb.block("next")
            c, addr, v = fb.regs(3)
            entry.li(c, 1)
            entry.br(c, "out", "next")
            out.ret()
            nxt.li(addr, 5)
            nxt.li(v, 6)
            nxt.store(addr, v)
            nxt.ret()
            return ["entry", "next"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        store_idx = next(
            i
            for i, instr in enumerate(code.instructions)
            if instr.opcode is Opcode.STORE
        )
        br_idx = next(
            i
            for i, instr in enumerate(code.instructions)
            if instr.opcode is Opcode.BR
        )
        assert any(
            src == br_idx and lat >= 1 for src, lat in graph.preds[store_idx]
        )

    def test_pure_op_can_float_above_branch(self):
        def blocks(fb):
            entry = fb.block("entry")
            out = fb.block("out")
            nxt = fb.block("next")
            c, x, y = fb.regs(3)
            entry.li(c, 1)
            entry.br(c, "out", "next")
            out.ret()
            nxt.li(x, 5)
            nxt.li(y, 6)
            nxt.ret()
            return ["entry", "next"]

        proc, code = build_code(blocks)
        rename_superblock(code, proc)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        li_idx = next(
            i
            for i, instr in enumerate(code.instructions)
            if instr.opcode is Opcode.LI and instr.imm == 5
        )
        br_idx = next(
            i
            for i, instr in enumerate(code.instructions)
            if instr.opcode is Opcode.BR
        )
        assert not any(src == br_idx for src, _ in graph.preds[li_idx])

    def test_control_instructions_ordered(self):
        program = diamond_program()
        bundle = collect_profiles(program, input_tape=[10, 10, -1])
        result = form_superblocks(
            program,
            scheme("M4"),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        proc = result.program.procedure("main")
        liveness = compute_liveness(proc)
        big = max(result.superblocks["main"], key=lambda sb: sb.size_blocks)
        code = extract_superblock_code(proc, big, liveness)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        controls = [
            i for i, instr in enumerate(code.instructions) if instr.is_control
        ]
        for a, b in zip(controls, controls[1:]):
            assert any(src == a and lat >= 1 for src, lat in graph.preds[b])

    def test_call_is_barrier(self):
        def blocks(fb):
            b = fb.block("entry")
            x, y = fb.regs(2)
            b.li(x, 1)
            b.emit(ins.call("main", (), None))
            b.li(y, 2)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        graph = build_dependence_graph(code, PAPER_MACHINE)
        # call (idx 1) depends on li before, and li after depends on call.
        assert any(src == 0 for src, _ in graph.preds[1])
        assert any(src == 1 and lat >= 1 for src, lat in graph.preds[2])


class TestScheduler:
    def test_independent_ops_share_cycle(self):
        def blocks(fb):
            b = fb.block("entry")
            regs = fb.regs(6)
            for i, r in enumerate(regs):
                b.li(r, i)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        sched = schedule_superblock(code, PAPER_MACHINE)
        assert verify_schedule(sched) == []
        # 6 li's in cycle 0, ret in its own (control) slot cycle 0 too.
        assert sched.bundles[0] and len(sched.bundles[0]) >= 6

    def test_issue_width_respected(self):
        def blocks(fb):
            b = fb.block("entry")
            regs = fb.regs(20)
            for i, r in enumerate(regs):
                b.li(r, i)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        sched = schedule_superblock(code, PAPER_MACHINE)
        assert verify_schedule(sched) == []
        for bundle in sched.bundles:
            assert len(bundle) <= PAPER_MACHINE.issue_width

    def test_narrow_machine(self):
        def blocks(fb):
            b = fb.block("entry")
            regs = fb.regs(8)
            for i, r in enumerate(regs):
                b.li(r, i)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        narrow = MachineModel(issue_width=2)
        sched = schedule_superblock(code, narrow)
        assert verify_schedule(sched) == []
        assert sched.length >= 4

    def test_dependence_chain_serializes(self):
        def blocks(fb):
            b = fb.block("entry")
            r = fb.regs(5)
            b.li(r[0], 1)
            for i in range(1, 5):
                b.add(r[i], r[i - 1], r[i - 1])
            b.print_(r[4])
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        sched = schedule_superblock(code, PAPER_MACHINE)
        assert verify_schedule(sched) == []
        assert sched.length >= 5

    def test_realistic_latencies_lengthen_schedule(self):
        def blocks(fb):
            b = fb.block("entry")
            a, bb, c, d = fb.regs(4)
            b.li(a, 3)
            b.li(bb, 4)
            b.mul(c, a, bb)
            b.mul(d, c, c)
            b.print_(d)
            b.ret()
            return ["entry"]

        proc, code = build_code(blocks)
        fast = schedule_superblock(code, PAPER_MACHINE)
        slow = schedule_superblock(code, REALISTIC_MACHINE)
        assert verify_schedule(slow) == []
        assert slow.length > fast.length

    def test_speculation_happens_and_is_marked(self):
        # Code after a side exit floats above it once renamed.
        def blocks(fb):
            entry = fb.block("entry")
            out = fb.block("out")
            nxt = fb.block("next")
            c = fb.reg()
            regs = fb.regs(4)
            entry.li(c, 1)
            entry.br(c, "out", "next")
            out.ret()
            for i, r in enumerate(regs):
                nxt.li(r, i)
            nxt.print_(regs[3])
            nxt.ret()
            return ["entry", "next"]

        proc, code = build_code(blocks)
        rename_superblock(code, proc)
        sched = schedule_superblock(code, PAPER_MACHINE)
        assert verify_schedule(sched) == []
        spec = [op for op in sched.ops if op.speculative]
        assert spec, "renamed pure ops should speculate above the branch"
        for op in spec:
            assert op.instr.is_pure or op.instr.opcode in (
                Opcode.LOAD,
                Opcode.LOAD_S,
            )

    def test_end_to_end_superblock_from_formation(self):
        program = figure3_loop_program()
        bundle = collect_profiles(program, input_tape=[24, 0])
        result = form_superblocks(
            program,
            scheme("P4"),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        proc = result.program.procedure("main")
        liveness = compute_liveness(proc)
        for sb in result.superblocks["main"]:
            code = extract_superblock_code(proc, sb, liveness)
            rename_superblock(code, proc)
            sched = schedule_superblock(code, PAPER_MACHINE)
            assert verify_schedule(sched) == []
