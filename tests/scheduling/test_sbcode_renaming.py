"""Tests for superblock linearization and register renaming."""

from repro.analysis import compute_liveness
from repro.formation import form_superblocks, scheme
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, Opcode, build_program
from repro.profiling import collect_profiles
from repro.scheduling import extract_superblock_code
from repro.scheduling.renaming import rename_superblock

from tests.support import diamond_program


def formed(program, name, tape):
    bundle = collect_profiles(program, input_tape=tape)
    return form_superblocks(
        program, scheme(name), edge_profile=bundle.edge, path_profile=bundle.path
    )


class TestExtraction:
    def test_internal_jump_dropped(self):
        result = formed(diamond_program(), "M4", [10, 10, 10, 60] * 6 + [-1])
        proc = result.program.procedure("main")
        liveness = compute_liveness(proc)
        big = max(
            result.superblocks["main"], key=lambda sb: sb.size_blocks
        )
        code = extract_superblock_code(proc, big, liveness)
        # jmp instructions to the next member block are gone.
        for i, instr in enumerate(code.instructions[:-1]):
            if instr.opcode is Opcode.JMP:
                info = code.exits[instr]
                assert info.on_trace_target is None

    def test_exit_annotations_cover_all_terminators(self):
        result = formed(diamond_program(), "M4", [10, 11, 60] * 4 + [-1])
        proc = result.program.procedure("main")
        liveness = compute_liveness(proc)
        for sb in result.superblocks["main"]:
            code = extract_superblock_code(proc, sb, liveness)
            assert code.instructions[-1] in code.exits
            for instr in code.instructions:
                if instr.opcode in (Opcode.BR, Opcode.MBR):
                    assert instr in code.exits

    def test_instructions_are_copies(self):
        result = formed(diamond_program(), "BB", [10, -1])
        proc = result.program.procedure("main")
        liveness = compute_liveness(proc)
        sb = result.superblocks["main"][0]
        code = extract_superblock_code(proc, sb, liveness)
        originals = {
            id(i) for label in sb.labels for i in proc.block(label).instructions
        }
        for instr in code.instructions:
            assert id(instr) not in originals

    def test_exit_live_is_off_trace_live_in(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        out = fb.block("out")
        nxt = fb.block("next")
        x, c = fb.regs(2)
        entry.li(x, 7)
        entry.li(c, 1)
        entry.br(c, "out", "next")
        out.print_(x)
        out.ret()
        nxt.ret()
        program = build_program(fb)
        proc = program.procedure("main")
        liveness = compute_liveness(proc)
        sb = Superblock("main", ["entry", "next"])
        code = extract_superblock_code(proc, sb, liveness)
        br = code.instructions[2]
        assert code.exits[br].on_trace_target == "next"
        assert code.exits[br].live == {x}


class TestRenaming:
    def _entry_code(self, fb_program, sb_labels):
        proc = fb_program.procedure("main")
        liveness = compute_liveness(proc)
        sb = Superblock("main", sb_labels)
        return proc, extract_superblock_code(proc, sb, liveness)

    def test_defs_get_fresh_registers(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        x = fb.reg()
        b.li(x, 1)
        b.li(x, 2)
        b.print_(x)
        b.ret()
        program = build_program(fb)
        proc, code = self._entry_code(program, ["entry"])
        bound = proc.max_reg
        rename_superblock(code, proc)
        defs = [i.dest for i in code.instructions if i.dest is not None]
        assert all(d >= bound for d in defs)
        assert len(set(defs)) == len(defs)  # no WAW left

    def test_uses_follow_renaming(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        x, y = fb.regs(2)
        b.li(x, 1)
        b.add(y, x, x)
        b.print_(y)
        b.ret()
        program = build_program(fb)
        proc, code = self._entry_code(program, ["entry"])
        rename_superblock(code, proc)
        li, add, pr = code.instructions[0], code.instructions[1], code.instructions[2]
        assert add.srcs == (li.dest, li.dest)
        assert pr.srcs == (add.dest,)

    def test_exit_live_def_materialized(self):
        # x is live at the side exit: its def must be followed by a move
        # back into the architectural register.
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        out = fb.block("out")
        nxt = fb.block("next")
        x, c = fb.regs(2)
        entry.li(x, 7)
        entry.li(c, 1)
        entry.br(c, "out", "next")
        out.print_(x)
        out.ret()
        nxt.ret()
        program = build_program(fb)
        proc, code = self._entry_code(program, ["entry", "next"])
        rename_superblock(code, proc)
        movs = [
            i
            for i in code.instructions
            if i.opcode is Opcode.MOV and i.dest == x
        ]
        assert len(movs) == 1

    def test_dead_off_trace_def_not_materialized(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        out = fb.block("out")
        nxt = fb.block("next")
        x, c = fb.regs(2)
        entry.li(x, 7)
        entry.li(c, 1)
        entry.br(c, "out", "next")
        out.ret()  # x dead off-trace
        nxt.print_(x)
        nxt.ret()
        program = build_program(fb)
        proc, code = self._entry_code(program, ["entry", "next"])
        rename_superblock(code, proc)
        movs = [i for i in code.instructions if i.opcode is Opcode.MOV]
        assert movs == []

    def test_branch_sources_renamed(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        out = fb.block("out")
        nxt = fb.block("next")
        c = fb.reg()
        entry.li(c, 1)
        entry.br(c, "out", "next")
        out.ret()
        nxt.ret()
        program = build_program(fb)
        proc, code = self._entry_code(program, ["entry", "next"])
        rename_superblock(code, proc)
        li, br = code.instructions[0], code.instructions[1]
        assert br.srcs == (li.dest,)

    def test_control_instruction_identity_preserved(self):
        program = diamond_program()
        proc = program.procedure("main").copy()
        # wrap in a program copy context for extraction
        result = formed(diamond_program(), "BB", [10, -1])
        tproc = result.program.procedure("main")
        liveness = compute_liveness(tproc)
        sb = result.superblocks["main"][0]
        code = extract_superblock_code(tproc, sb, liveness)
        exits_before = set(code.exits)
        rename_superblock(code, tproc)
        assert set(code.exits) == exits_before
