"""Tests for iterative modulo scheduling of hot loop superblocks."""

import pytest

from repro.analysis import compute_liveness
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, build_program
from repro.ir import instructions as ins
from repro.scheduling import (
    PAPER_MACHINE,
    REALISTIC_MACHINE,
    SchedConfig,
    extract_superblock_code,
    schedule_superblock,
    verify_schedule,
)
from repro.scheduling.pipeline import (
    expansion_problems,
    loop_candidate,
    try_pipeline_loop,
)

PIPE = SchedConfig(pipeline=True)


def loop_code(body, extra_blocks=None, machine=PAPER_MACHINE):
    """Build ``main`` with a single-block loop and return the loop's
    superblock code (head = the loop block, back edge to itself)."""
    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    loop = fb.block("loop")
    done = fb.block("done")
    regs = body(fb, entry, loop, done)
    program = build_program(fb)
    proc = program.procedure("main")
    liveness = compute_liveness(proc)
    sb = Superblock("main", ["loop"])
    return extract_superblock_code(proc, sb, liveness)


def counting_loop(fb, entry, loop, done):
    i, one, limit, acc, t1, t2, c = fb.regs(7)
    entry.li(i, 0)
    entry.li(one, 1)
    entry.li(limit, 12)
    entry.li(acc, 0)
    entry.jmp("loop")
    # Per-iteration work is a 2-mul chain (6 cycles on REALISTIC) while
    # the recurrences (acc, i) are single adds: ripe for overlap.
    loop.mul(t1, i, i)
    loop.mul(t2, t1, i)
    loop.add(acc, acc, t2)
    loop.add(i, i, one)
    loop.cmplt(c, i, limit)
    loop.br(c, "loop", "done")
    done.print_(acc)
    done.ret()


class TestLoopCandidate:
    def test_counting_loop_is_eligible(self):
        code = loop_code(counting_loop)
        assert loop_candidate(code, PIPE)

    def test_no_back_edge_not_eligible(self):
        def straight(fb, entry, loop, done):
            a = fb.reg()
            entry.jmp("loop")
            loop.li(a, 1)
            loop.jmp("done")
            done.print_(a)
            done.ret()

        code = loop_code(straight)
        assert not loop_candidate(code, PIPE)

    def test_call_in_body_not_eligible(self):
        def with_call(fb, entry, loop, done):
            i, one, limit, c = fb.regs(4)
            entry.li(i, 0)
            entry.li(one, 1)
            entry.li(limit, 4)
            entry.jmp("loop")
            loop.add(i, i, one)
            loop.emit(ins.call("main", (), None))
            loop.cmplt(c, i, limit)
            loop.br(c, "loop", "done")
            done.ret()

        code = loop_code(with_call)
        assert not loop_candidate(code, PIPE)

    def test_op_budget_respected(self):
        code = loop_code(counting_loop)
        tiny = SchedConfig(pipeline=True, pipeline_max_ops=3)
        assert not loop_candidate(code, tiny)


class TestTryPipelineLoop:
    def test_realistic_loop_pipelines_and_is_legal(self):
        code = loop_code(counting_loop)
        listed = schedule_superblock(code, REALISTIC_MACHINE)
        assert verify_schedule(listed) == []
        loop = try_pipeline_loop(
            code, listed, REALISTIC_MACHINE, PIPE, used_labels=set()
        )
        assert loop is not None, "the mul-chain loop should pipeline"
        assert loop.ii < loop.list_length == listed.length
        assert expansion_problems(loop) == []
        assert expansion_problems(loop, trips=5) == []
        assert loop.kernel.length == loop.ii
        assert verify_schedule(loop.kernel) == []
        if loop.prologue is not None:
            assert verify_schedule(loop.prologue) == []
            assert loop.phase > 0

    def test_pipelining_is_opt_in(self):
        # The compactor only attempts modulo scheduling behind
        # ``sched.pipeline``; the default config keeps it off entirely.
        default = SchedConfig()
        assert not default.pipeline
        assert default.is_default
        assert PIPE.pipeline and not PIPE.is_default

    def test_fallback_when_no_improvement(self):
        # A pure recurrence (every op feeds the next iteration's chain)
        # leaves no overlap to exploit; the scheduler must decline rather
        # than emit an equal-or-worse kernel.
        def recurrence(fb, entry, loop, done):
            i, one, limit, c = fb.regs(4)
            entry.li(i, 0)
            entry.li(one, 1)
            entry.li(limit, 8)
            entry.jmp("loop")
            loop.add(i, i, one)
            loop.cmplt(c, i, limit)
            loop.br(c, "loop", "done")
            done.print_(i)
            done.ret()

        code = loop_code(recurrence)
        listed = schedule_superblock(code, PAPER_MACHINE)
        loop = try_pipeline_loop(
            code, listed, PAPER_MACHINE, PIPE, used_labels=set()
        )
        if loop is not None:
            # Only acceptable outcome: a strictly faster, legal kernel.
            assert loop.ii < listed.length
            assert expansion_problems(loop) == []

    def test_times_cover_every_op(self):
        code = loop_code(counting_loop)
        listed = schedule_superblock(code, REALISTIC_MACHINE)
        loop = try_pipeline_loop(
            code, listed, REALISTIC_MACHINE, PIPE, used_labels=set()
        )
        assert loop is not None
        n = len(code.instructions)
        assert len(loop.times) == len(loop.offsets) == n
        # The back branch issues last and closes the kernel window.
        assert loop.times[n - 1] == max(loop.times)


class TestPipelineDifferential:
    """Pipelined compilation must preserve program behaviour end to end."""

    @pytest.mark.parametrize("wname", ["wc", "eqn"])
    def test_outputs_match_reference(self, wname):
        from repro.experiments import run_suite

        plain = run_suite(
            ["P4"], workload_names=[wname], scale=0.25, cache=None
        )[(wname, "P4")]
        piped = run_suite(
            ["P4"],
            workload_names=[wname],
            scale=0.25,
            cache=None,
            sched=PIPE,
        )[(wname, "P4")]
        assert piped.result.output == plain.result.output
        assert piped.result.return_value == plain.result.return_value

    def test_validate_suite_with_pipeline(self):
        from repro.experiments import validate_suite

        rows = validate_suite(
            ["P4"],
            workload_names=["eqn"],
            scale=0.25,
            cache=None,
            sched=PIPE,
        )
        assert rows and all(row.ok for row in rows)
