"""Tests for the branch-and-bound exact-schedule oracle (``gapcheck``)."""

import random

from repro.analysis import compute_liveness
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, build_program
from repro.scheduling import (
    MachineModel,
    PAPER_MACHINE,
    REALISTIC_MACHINE,
    ScheduleWeights,
    oracle_schedule_length,
    schedule_superblock,
)


def build_code(make_blocks):
    fb = FunctionBuilder("main")
    labels = make_blocks(fb)
    program = build_program(fb)
    proc = program.procedure("main")
    liveness = compute_liveness(proc)
    sb = Superblock("main", labels)
    from repro.scheduling import extract_superblock_code

    return extract_superblock_code(proc, sb, liveness)


def chain_code(n=6):
    """A pure dependence chain: optimum is forced, no freedom at all."""

    def blocks(fb):
        b = fb.block("entry")
        r = fb.regs(n)
        b.li(r[0], 1)
        for i in range(1, n):
            b.add(r[i], r[i - 1], r[i - 1])
        b.print_(r[-1])
        b.ret()
        return ["entry"]

    return build_code(blocks)


def wide_code(n=16):
    """n independent li's: optimum is ceil over the issue width."""

    def blocks(fb):
        b = fb.block("entry")
        regs = fb.regs(n)
        for i, r in enumerate(regs):
            b.li(r, i)
        b.ret()
        return ["entry"]

    return build_code(blocks)


def random_code(seed, n=18):
    """Pseudo-random mix of chains and independent work."""
    rng = random.Random(seed)

    def blocks(fb):
        b = fb.block("entry")
        regs = fb.regs(n)
        for i, r in enumerate(regs):
            roll = rng.random()
            if i >= 2 and roll < 0.45:
                b.add(r, regs[rng.randrange(i)], regs[rng.randrange(i)])
            elif i >= 2 and roll < 0.6:
                b.mul(r, regs[rng.randrange(i)], regs[rng.randrange(i)])
            else:
                b.li(r, i)
        b.print_(regs[-1])
        b.ret()
        return ["entry"]

    return build_code(blocks)


NARROW2 = MachineModel(issue_width=2, name="narrow2")


class TestOracleExactness:
    def test_chain_optimum_matches_list(self):
        code = chain_code()
        listed = schedule_superblock(code, PAPER_MACHINE)
        result = oracle_schedule_length(code, PAPER_MACHINE)
        assert result.proved and result.status == "optimal"
        assert result.length == listed.length

    def test_wide_block_optimum_is_width_bound(self):
        code = wide_code(16)
        result = oracle_schedule_length(code, NARROW2)
        assert result.proved
        # 16 li's + print + ret on a 2-wide machine: the count bound
        # dominates, and the list schedule achieves it.
        listed = schedule_superblock(code, NARROW2)
        assert result.length == listed.length

    def test_oracle_never_exceeds_list_schedule(self):
        for seed in range(12):
            code = random_code(seed)
            for machine in (PAPER_MACHINE, REALISTIC_MACHINE, NARROW2):
                listed = schedule_superblock(code, machine)
                result = oracle_schedule_length(
                    code, machine, upper_bound=listed.length
                )
                assert result.length <= listed.length
                if result.proved:
                    assert result.status == "optimal"

    def test_oracle_beats_adversarial_priorities(self):
        # The search must genuinely explore: against a deliberately bad
        # list schedule (anti-height priority) the oracle finds shorter
        # schedules on a clear majority of random narrow-machine codes.
        wins = ties = 0
        for seed in range(40):
            code = random_code(seed)
            bad = schedule_superblock(
                code, NARROW2, weights=ScheduleWeights(height=-1.0)
            )
            result = oracle_schedule_length(
                code, NARROW2, upper_bound=bad.length
            )
            assert result.length <= bad.length
            if result.length < bad.length:
                wins += 1
            else:
                ties += 1
        assert wins > ties

    def test_determinism(self):
        code = random_code(3)
        a = oracle_schedule_length(code, NARROW2)
        b = oracle_schedule_length(code, NARROW2)
        assert a == b


class TestOracleBudgets:
    def test_skipped_when_over_op_budget(self):
        code = wide_code(12)
        listed = schedule_superblock(code, PAPER_MACHINE)
        result = oracle_schedule_length(
            code, PAPER_MACHINE, max_ops=4, upper_bound=listed.length
        )
        assert result.status == "skipped"
        assert not result.proved
        assert result.nodes == 0
        # Even skipped, the reported length is the achievable upper bound.
        assert result.length == listed.length

    def test_budget_exhaustion_keeps_valid_upper_bound(self):
        # A node budget of 1 cannot finish any branchy search; the result
        # must degrade gracefully to the incumbent list-schedule length.
        code = random_code(7)
        listed = schedule_superblock(code, NARROW2)
        result = oracle_schedule_length(
            code, NARROW2, node_budget=1, upper_bound=listed.length
        )
        assert result.status in ("budget", "optimal")
        assert result.length <= listed.length
        if result.status == "budget":
            assert not result.proved

    def test_status_vocabulary(self):
        code = random_code(0)
        result = oracle_schedule_length(code, PAPER_MACHINE)
        assert result.status in ("optimal", "budget", "skipped")
