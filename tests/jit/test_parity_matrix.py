"""Cross-engine parity matrix: every execution engine, same answers.

The interpreter has four ways to run a program — the no-observer fast
path, the observer loop, the trace recorder, and the template JIT (plain
and traced) — and the VLIW simulator has two (reference loop and JIT).
They are alternative implementations of one semantics, so everything
observable must be bit-identical across them: outputs, dynamic counters,
recorded traces, and every profile derived from them.  The matrix runs
the whole workload suite plus a band of fuzz-generated programs, so a
codegen bug in any engine fails here with the engine pair named.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.frontend import compile_source
from repro.interp.interpreter import (
    ExecutionObserver,
    run_program,
    run_program_traced,
)
from repro.pipeline import compile_scheme
from repro.profiling.collector import (
    collect_profiles,
    profiles_from_trace,
    record_trace,
)
from repro.simulate import simulate
from repro.validation.fuzz import fuzz_tapes
from repro.validation.genprog import generate_source
from repro.workloads.suite import all_workloads, workload_map

SCALE = 0.1
FUZZ_SEEDS = range(25)
WORKLOAD_NAMES = [wl.name for wl in all_workloads()]


def _trace_key(trace):
    """Hashable image of an ExecutionTrace for equality assertions."""
    return (
        tuple(trace.proc_names),
        tuple(tuple(t) for t in trace.labels),
        tuple((pidx, tuple(buf)) for pidx, buf in trace.frames),
    )


def _result_key(result):
    return asdict(result)


class _CountingObserver(ExecutionObserver):
    """Minimal observer: forces the instrumented interpreter loop."""

    def __init__(self):
        self.blocks = 0

    def block_executed(self, proc_name, frame_id, label):
        self.blocks += 1


def _run_all_interp_engines(program, tape):
    """Run one program through every interpreter engine."""
    fast = run_program(program, input_tape=tape, jit=False)
    observer = _CountingObserver()
    observed = run_program(
        program, input_tape=tape, observer=observer, jit=False
    )
    traced_result, trace = run_program_traced(
        program, input_tape=tape, jit=False
    )
    jit = run_program(program, input_tape=tape, jit=True)
    jit_traced_result, jit_trace = run_program_traced(
        program, input_tape=tape, jit=True
    )
    engines = {
        "fast": fast,
        "observed": observed,
        "traced": traced_result,
        "jit": jit,
        "jit_traced": jit_traced_result,
    }
    return engines, observer, trace, jit_trace


class TestInterpreterMatrix:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_engines_agree_on_workload(self, name):
        workload = workload_map()[name]
        program = workload.program()
        tape = workload.train_tape(SCALE)
        engines, observer, trace, jit_trace = _run_all_interp_engines(
            program, tape
        )
        baseline = _result_key(engines["fast"])
        for engine, result in engines.items():
            assert _result_key(result) == baseline, engine
        assert observer.blocks == engines["fast"].blocks
        assert _trace_key(jit_trace) == _trace_key(trace)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_profiles_agree_across_engines(self, name):
        """Streaming observers vs a JIT-recorded trace replay: identical
        edge, general-path, and forward-path counts."""
        workload = workload_map()[name]
        program = workload.program()
        tape = workload.train_tape(SCALE)
        streamed = collect_profiles(
            program, input_tape=tape, include_forward=True
        )
        traced = record_trace(program, input_tape=tape)
        replayed = profiles_from_trace(
            program, traced, include_forward=True
        )
        assert replayed.edge.__dict__ == streamed.edge.__dict__
        assert replayed.path.paths == streamed.path.paths
        assert replayed.forward.paths == streamed.forward.paths


class TestVliwMatrix:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_jit_matches_reference_p4(self, name):
        workload = workload_map()[name]
        program = workload.fresh_program()
        _, _, compiled, _ = compile_scheme(
            program, "P4", workload.train_tape(SCALE)
        )
        tape = workload.test_tape(SCALE)
        ref = simulate(compiled, tape, jit=False)
        jit = simulate(compiled, tape, jit=True)
        assert asdict(jit) == asdict(ref)

    @pytest.mark.parametrize("scheme", ["BB", "M4", "P4e"])
    @pytest.mark.parametrize("name", ["alt", "wc", "eqn"])
    def test_jit_matches_reference_other_schemes(self, name, scheme):
        workload = workload_map()[name]
        program = workload.fresh_program()
        _, _, compiled, _ = compile_scheme(
            program, scheme, workload.train_tape(SCALE)
        )
        tape = workload.test_tape(SCALE)
        ref = simulate(compiled, tape, jit=False)
        jit = simulate(compiled, tape, jit=True)
        assert asdict(jit) == asdict(ref)


class TestFuzzMatrix:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_engines_agree_on_fuzz_program(self, seed):
        """Generated programs: every interpreter engine and both simulator
        loops agree — including on which exception they raise."""
        source = generate_source(seed)
        train, test = fuzz_tapes(seed)
        program = compile_source(source)

        def outcome(fn):
            try:
                return ("ok", fn())
            except Exception as exc:  # parity includes failure identity
                return ("exc", (type(exc).__name__, str(exc)))

        kind, fast = outcome(
            lambda: _result_key(
                run_program(program, input_tape=train, jit=False)
            )
        )
        jkind, jit = outcome(
            lambda: _result_key(
                run_program(program, input_tape=train, jit=True)
            )
        )
        assert (jkind, jit) == (kind, fast)

        try:
            _, _, compiled, _ = compile_scheme(program, "P4", train)
        except Exception:
            return  # pipeline rejection is upstream of both simulators
        skind, ref = outcome(
            lambda: asdict(
                simulate(compiled, test, cycle_limit=2_000_000, jit=False)
            )
        )
        sjkind, sjit = outcome(
            lambda: asdict(
                simulate(compiled, test, cycle_limit=2_000_000, jit=True)
            )
        )
        assert (sjkind, sjit) == (skind, ref)
