"""Tests for superblock-local constant folding and strength reduction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fold_constants
from repro.ir import Opcode
from repro.ir import instructions as ins


class TestFolding:
    def test_constant_binary_folds(self):
        seq = [ins.li(0, 6), ins.li(1, 7), ins.binop(Opcode.MUL, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[2].opcode is Opcode.LI and out[2].imm == 42

    def test_constant_chain_folds(self):
        seq = [
            ins.li(0, 5),
            ins.binop(Opcode.ADD, 1, 0, 0),
            ins.binop(Opcode.MUL, 2, 1, 1),
        ]
        out = fold_constants(seq)
        assert out[1].imm == 10
        assert out[2].imm == 100

    def test_unary_folds(self):
        seq = [ins.li(0, 3), ins.unop(Opcode.NEG, 1, 0)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.LI and out[1].imm == -3

    def test_mov_of_constant_folds(self):
        seq = [ins.li(0, 9), ins.mov(1, 0)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.LI and out[1].imm == 9

    def test_division_by_known_zero_left_alone(self):
        seq = [ins.li(0, 1), ins.li(1, 0), ins.binop(Opcode.DIV, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[2].opcode is Opcode.DIV

    def test_knowledge_killed_by_unknown_def(self):
        seq = [
            ins.li(0, 5),
            ins.read(0),  # clobbers the constant
            ins.binop(Opcode.ADD, 1, 0, 0),
        ]
        out = fold_constants(seq)
        assert out[2].opcode is Opcode.ADD

    def test_unchanged_instructions_keep_identity(self):
        branch = ins.br(3, "a", "b")
        seq = [ins.read(3), branch]
        out = fold_constants(seq)
        assert out[1] is branch


class TestStrengthReduction:
    def test_add_zero_becomes_mov(self):
        seq = [ins.li(1, 0), ins.binop(Opcode.ADD, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.MOV and out[1].srcs == (0,)

    def test_mul_one_becomes_mov(self):
        seq = [ins.li(1, 1), ins.binop(Opcode.MUL, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.MOV

    def test_mul_zero_becomes_zero(self):
        seq = [ins.li(1, 0), ins.binop(Opcode.MUL, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.LI and out[1].imm == 0

    def test_left_identity(self):
        seq = [ins.li(0, 0), ins.binop(Opcode.ADD, 2, 0, 1)]
        out = fold_constants(seq)
        assert out[1].opcode is Opcode.MOV and out[1].srcs == (1,)

    def test_sub_zero_is_right_identity_only(self):
        seq = [ins.li(0, 0), ins.binop(Opcode.SUB, 2, 0, 1)]
        out = fold_constants(seq)
        # 0 - x is NOT x.
        assert out[1].opcode is Opcode.SUB


class TestSemanticsProperty:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                     Opcode.OR, Opcode.XOR]
                ),
                st.integers(min_value=-9, max_value=9),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_folding_preserves_final_values(self, ops):
        """Interpret the region with and without folding: same registers."""
        from repro.interp.ops import BINARY_EVAL

        seq = []
        for i, (op, imm, a, b) in enumerate(ops):
            seq.append(ins.li(4 + i * 2, imm))
            seq.append(ins.binop(op, a, 4 + i * 2, b))
        folded = fold_constants([i.copy() for i in seq])

        def run(instrs):
            regs = {r: 0 for r in range(40)}
            for instr in instrs:
                if instr.opcode is Opcode.LI:
                    regs[instr.dest] = instr.imm
                elif instr.opcode is Opcode.MOV:
                    regs[instr.dest] = regs[instr.srcs[0]]
                else:
                    fn = BINARY_EVAL[instr.opcode]
                    regs[instr.dest] = fn(
                        regs[instr.srcs[0]], regs[instr.srcs[1]]
                    )
            return regs

        assert run(seq) == run(folded)
