"""Tests for superblock-local value numbering and dead-code elimination."""

from repro.analysis import eliminate_dead_code, local_value_number
from repro.ir import Opcode
from repro.ir import instructions as ins


class TestDeadCodeElimination:
    def test_unused_pure_instruction_removed(self):
        seq = [ins.li(0, 1), ins.li(1, 2), ins.print_(1), ins.ret()]
        out = eliminate_dead_code(seq, exit_live={}, final_live=set())
        ops = [i.opcode for i in out]
        assert Opcode.PRINT in ops
        # v0 is never used: its li disappears.
        assert sum(1 for i in out if i.opcode is Opcode.LI) == 1

    def test_side_effects_never_removed(self):
        seq = [ins.store(0, 1), ins.read(2), ins.ret()]
        out = eliminate_dead_code(seq, exit_live={}, final_live=set())
        assert len(out) == 3

    def test_value_live_at_exit_kept(self):
        seq = [ins.li(0, 1), ins.br(2, "out", "next"), ins.ret()]
        out = eliminate_dead_code(seq, exit_live={1: {0}}, final_live=set())
        assert any(i.opcode is Opcode.LI for i in out)

    def test_value_dead_at_exit_removed(self):
        seq = [ins.li(0, 1), ins.br(2, "out", "next"), ins.ret()]
        out = eliminate_dead_code(seq, exit_live={1: set()}, final_live=set())
        assert not any(i.opcode is Opcode.LI for i in out)

    def test_final_live_keeps_last_def(self):
        seq = [ins.li(0, 1)]
        out = eliminate_dead_code(seq, exit_live={}, final_live={0})
        assert len(out) == 1

    def test_redefinition_kills_earlier_def(self):
        seq = [ins.li(0, 1), ins.li(0, 2)]
        out = eliminate_dead_code(seq, exit_live={}, final_live={0})
        assert len(out) == 1
        assert out[0].imm == 2

    def test_chain_of_dead_computation_collapses(self):
        seq = [
            ins.li(0, 1),
            ins.binop(Opcode.ADD, 1, 0, 0),
            ins.binop(Opcode.MUL, 2, 1, 1),
        ]
        out = eliminate_dead_code(seq, exit_live={}, final_live=set())
        assert out == []


class TestValueNumbering:
    def test_redundant_add_becomes_mov(self):
        seq = [
            ins.binop(Opcode.ADD, 2, 0, 1),
            ins.binop(Opcode.ADD, 3, 0, 1),
        ]
        out = local_value_number(seq)
        assert out[0].opcode is Opcode.ADD
        assert out[1].opcode is Opcode.MOV
        assert out[1].srcs == (2,)
        assert out[1].dest == 3

    def test_commutativity_recognized(self):
        seq = [
            ins.binop(Opcode.ADD, 2, 0, 1),
            ins.binop(Opcode.ADD, 3, 1, 0),
        ]
        out = local_value_number(seq)
        assert out[1].opcode is Opcode.MOV

    def test_non_commutative_not_merged(self):
        seq = [
            ins.binop(Opcode.SUB, 2, 0, 1),
            ins.binop(Opcode.SUB, 3, 1, 0),
        ]
        out = local_value_number(seq)
        assert out[1].opcode is Opcode.SUB

    def test_clobbered_holder_not_reused(self):
        seq = [
            ins.binop(Opcode.ADD, 2, 0, 1),
            ins.li(2, 9),  # clobbers the holder of the sum
            ins.binop(Opcode.ADD, 3, 0, 1),
        ]
        out = local_value_number(seq)
        assert out[2].opcode is Opcode.ADD

    def test_repeated_li_merged(self):
        seq = [ins.li(0, 7), ins.li(1, 7)]
        out = local_value_number(seq)
        assert out[1].opcode is Opcode.MOV
        assert out[1].srcs == (0,)

    def test_load_reuse_within_epoch(self):
        seq = [ins.load(1, 0), ins.load(2, 0)]
        out = local_value_number(seq)
        assert out[1].opcode is Opcode.MOV

    def test_store_invalidates_loads(self):
        seq = [ins.load(1, 0), ins.store(0, 3), ins.load(2, 0)]
        out = local_value_number(seq)
        assert out[2].opcode is Opcode.LOAD

    def test_call_invalidates_loads(self):
        seq = [ins.load(1, 0), ins.call("f", (), None), ins.load(2, 0)]
        out = local_value_number(seq)
        assert out[2].opcode is Opcode.LOAD

    def test_read_results_never_merged(self):
        seq = [ins.read(0), ins.read(1)]
        out = local_value_number(seq)
        assert out[0].opcode is Opcode.READ
        assert out[1].opcode is Opcode.READ

    def test_mov_propagates_value_number(self):
        seq = [
            ins.binop(Opcode.ADD, 2, 0, 1),
            ins.mov(3, 2),
            ins.binop(Opcode.ADD, 4, 0, 1),
        ]
        out = local_value_number(seq)
        assert out[2].opcode is Opcode.MOV

    def test_length_preserved(self):
        seq = [
            ins.li(0, 1),
            ins.binop(Opcode.ADD, 1, 0, 0),
            ins.store(0, 1),
            ins.ret(),
        ]
        out = local_value_number(seq)
        assert len(out) == len(seq)
