"""Tests for backward liveness analysis."""

from repro.analysis import compute_liveness, instruction_defs, instruction_uses
from repro.ir import FunctionBuilder
from repro.ir import instructions as ins


class TestUseDef:
    def test_alu_uses_and_defs(self):
        i = ins.binop(ins.Opcode.ADD, 0, 1, 2)
        assert instruction_uses(i) == (1, 2)
        assert instruction_defs(i) == (0,)

    def test_store_has_no_defs(self):
        assert instruction_defs(ins.store(1, 2)) == ()
        assert instruction_uses(ins.store(1, 2)) == (1, 2)


class TestLiveness:
    def test_value_live_across_branch(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        left = fb.block("left")
        right = fb.block("right")
        x = fb.reg()
        c = fb.reg()
        entry.li(x, 5)
        entry.li(c, 1)
        entry.br(c, "left", "right")
        left.print_(x)
        left.ret()
        right.ret()

        info = compute_liveness(fb.proc)
        assert x in info.live_out_at("entry")
        assert x in info.live_in_at("left")
        assert x not in info.live_in_at("right")

    def test_redefined_register_not_live_in(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        nxt = fb.block("next")
        x = fb.reg()
        entry.li(x, 1)
        entry.jmp("next")
        nxt.li(x, 2)  # kills incoming x before any use
        nxt.print_(x)
        nxt.ret()
        info = compute_liveness(fb.proc)
        assert x not in info.live_in_at("next")
        assert x not in info.live_out_at("entry")

    def test_loop_carried_value_live_around_backedge(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        loop = fb.block("loop")
        exit_ = fb.block("exit")
        i = fb.reg()
        one = fb.reg()
        t = fb.reg()
        n = fb.reg()
        entry.read(n)
        entry.li(i, 0)
        entry.jmp("loop")
        loop.li(one, 1)
        loop.add(i, i, one)
        loop.cmplt(t, i, n)
        loop.br(t, "loop", "exit")
        exit_.print_(i)
        exit_.ret()

        info = compute_liveness(fb.proc)
        assert i in info.live_in_at("loop")
        assert i in info.live_out_at("loop")
        assert n in info.live_in_at("loop")
        # t is consumed by the branch within the block, not live-in.
        assert t not in info.live_in_at("loop")

    def test_return_value_is_a_use(self):
        fb = FunctionBuilder("f", num_params=1)
        b = fb.block("entry")
        (p,) = fb.params
        b.ret(p)
        info = compute_liveness(fb.proc)
        assert p in info.live_in_at("entry")

    def test_unknown_label_defaults_to_empty(self):
        fb = FunctionBuilder("f")
        fb.block("entry").ret()
        info = compute_liveness(fb.proc)
        assert info.live_in_at("ghost") == frozenset()
