"""Tests for dominator and loop analyses."""

from repro.analysis import (
    DominatorTree,
    back_edges,
    immediate_dominators,
    loop_headers,
    natural_loops,
)
from repro.ir import FunctionBuilder

from tests.support import diamond_program, figure3_loop_program


def simple_loop_proc():
    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    loop = fb.block("loop")
    body = fb.block("body")
    exit_ = fb.block("exit")
    c = fb.reg()
    entry.li(c, 1)
    entry.jmp("loop")
    loop.br(c, "body", "exit")
    body.jmp("loop")
    exit_.ret()
    return fb.proc


class TestDominators:
    def test_entry_has_no_idom(self):
        proc = simple_loop_proc()
        idom = immediate_dominators(proc)
        assert idom["entry"] is None

    def test_linear_chain(self):
        proc = simple_loop_proc()
        idom = immediate_dominators(proc)
        assert idom["loop"] == "entry"
        assert idom["body"] == "loop"
        assert idom["exit"] == "loop"

    def test_diamond_join_dominated_by_split(self):
        proc = diamond_program().procedure("main")
        tree = DominatorTree(proc)
        assert tree.dominates("A", "C")
        assert tree.dominates("A", "Y")
        assert not tree.dominates("B", "X")
        # The join 'A' (loop header) is not dominated by its arms.
        assert not tree.dominates("C", "A")

    def test_dominates_is_reflexive(self):
        proc = simple_loop_proc()
        tree = DominatorTree(proc)
        assert tree.dominates("body", "body")

    def test_dominators_of_chain(self):
        proc = simple_loop_proc()
        tree = DominatorTree(proc)
        assert tree.dominators_of("body") == ["body", "loop", "entry"]


class TestLoops:
    def test_simple_back_edge(self):
        proc = simple_loop_proc()
        assert back_edges(proc) == {("body", "loop")}
        assert loop_headers(proc) == {"loop"}

    def test_figure3_loop_structure(self):
        proc = figure3_loop_program().procedure("main")
        headers = loop_headers(proc)
        assert headers == {"A"}
        loops = natural_loops(proc)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "A"
        assert "B" in loop.body and "C" in loop.body and "D" in loop.body
        assert "exit" not in loop.body
        assert loop.contains("A")
        assert not loop.contains("entry")

    def test_diamond_outer_loop(self):
        proc = diamond_program().procedure("main")
        loops = natural_loops(proc)
        assert len(loops) == 1
        assert loops[0].header == "A"
        assert loops[0].back_edge_sources == ("C", "X", "Y")

    def test_straightline_has_no_loops(self):
        fb = FunctionBuilder("main")
        fb.block("entry").ret()
        assert natural_loops(fb.proc) == []
        assert back_edges(fb.proc) == set()
