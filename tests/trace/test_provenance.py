"""Provenance invariant: every scheduled op resolves to one source instr."""

import pytest

from repro.pipeline import run_scheme
from repro.trace import (
    ProvenanceError,
    Tracer,
    assign_origins,
    check_provenance,
    origin_id,
    origin_table,
    require_provenance,
)
from repro.workloads.suite import workload_map

from tests.support import call_program, diamond_program, figure3_loop_program

SCALE = 0.06


def traced_outcome(program, scheme_name, train, test):
    tracer = Tracer()
    outcome = run_scheme(
        program, scheme_name, train, test, tracer=tracer
    )
    return outcome


class TestAssignOrigins:
    def test_stamps_every_instruction(self):
        program = diamond_program()
        count = assign_origins(program)
        assert count > 0
        table = origin_table(program)
        assert len(table) == count
        for oid, instr in table.items():
            assert instr.origin == oid

    def test_idempotent(self):
        program = diamond_program()
        first = assign_origins(program)
        table_before = dict(origin_table(program))
        assert assign_origins(program) == first
        assert origin_table(program) == table_before

    def test_origin_id_format(self):
        assert origin_id("main", "entry", 4) == "main:entry:4"

    def test_copy_preserves_origin(self):
        program = diamond_program()
        assign_origins(program)
        proc = next(iter(program.procedures()))
        block = next(iter(proc.blocks()))
        instr = block.instructions[0]
        assert instr.copy().origin == instr.origin

    def test_origins_invisible_to_execution(self):
        from repro.interp.interpreter import run_program

        plain = run_program(diamond_program(), input_tape=[10, 3, 60, -1])
        stamped_program = diamond_program()
        assign_origins(stamped_program)
        stamped = run_program(stamped_program, input_tape=[10, 3, 60, -1])
        assert stamped.output == plain.output
        assert stamped.return_value == plain.return_value


class TestPipelineProvenance:
    @pytest.mark.parametrize("scheme_name", ["BB", "M4", "P4", "P4e"])
    def test_support_programs_clean(self, scheme_name):
        # The loop program exercises peel/unroll + tail duplication; the
        # call program exercises renaming compensation across calls.
        for program, train, test in [
            (figure3_loop_program(), [12, 0], [9, 0]),
            (call_program(), [6], [3]),
        ]:
            outcome = traced_outcome(program, scheme_name, train, test)
            assert check_provenance(program, outcome.compiled) == []

    @pytest.mark.parametrize("wname", ["alt", "wc"])
    def test_workloads_clean_under_path_scheme(self, wname):
        workload = workload_map()[wname]
        program = workload.program()
        outcome = traced_outcome(
            program,
            "P4",
            workload.train_tape(SCALE),
            workload.test_tape(SCALE),
        )
        assert check_provenance(program, outcome.compiled) == []

    def test_every_scheduled_op_has_exactly_one_origin(self):
        workload = workload_map()["alt"]
        program = workload.program()
        outcome = traced_outcome(
            program,
            "M4",
            workload.train_tape(SCALE),
            workload.test_tape(SCALE),
        )
        valid = set(origin_table(program))
        for cproc in outcome.compiled.procedures.values():
            for schedule in cproc.schedules.values():
                for op in schedule.ops:
                    assert op.instr.origin in valid

    def test_stripped_origin_is_reported(self):
        program = figure3_loop_program()
        outcome = traced_outcome(program, "M4", [12, 0], [9, 0])
        cproc = next(iter(outcome.compiled.procedures.values()))
        schedule = next(iter(cproc.schedules.values()))
        schedule.ops[0].instr.origin = None
        problems = check_provenance(program, outcome.compiled)
        assert len(problems) == 1
        assert "no origin" in problems[0]
        with pytest.raises(ProvenanceError, match="no origin"):
            require_provenance(program, outcome.compiled)

    def test_foreign_origin_is_reported(self):
        program = figure3_loop_program()
        outcome = traced_outcome(program, "M4", [12, 0], [9, 0])
        cproc = next(iter(outcome.compiled.procedures.values()))
        schedule = next(iter(cproc.schedules.values()))
        schedule.ops[0].instr.origin = "ghost:nowhere:0"
        problems = check_provenance(program, outcome.compiled)
        assert any("unknown origin" in p for p in problems)


class TestFuzzIntegration:
    def test_classifier_runs_provenance_check(self, monkeypatch):
        """classify_failure must surface a provenance violation as a
        scheme-stage failure kind."""
        import repro.validation.fuzz as fuzz

        def sabotage(source, compiled):
            raise ProvenanceError("planted")

        monkeypatch.setattr(fuzz, "require_provenance", sabotage)
        found = fuzz.classify_failure(
            "func main() { print(read() + 1); }", seed=0, schemes=("M4",)
        )
        assert found is not None
        kind, message = found
        assert kind == "M4:ProvenanceError"
        assert "planted" in message

    def test_clean_program_passes_classifier(self):
        from repro.validation.fuzz import classify_failure

        found = classify_failure(
            "func main() { var x = read(); while (x > 0) {"
            " print(x); x = x - 1; } }",
            seed=1,
            schemes=("M4", "P4"),
        )
        assert found is None
