"""End-to-end tracer guarantees: tracer-off parity, serial-vs-parallel
determinism, and the explain / trace-diff acceptance behaviours."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import run_suite
from repro.pipeline import run_scheme
from repro.trace import Tracer
from repro.trace.explain import (
    decision_chains,
    explain,
    format_explain,
    format_trace_diff,
    mean_exit_cycles,
    run_traced,
    trace_diff,
)
from repro.workloads.suite import workload_map

TINY = 0.06
SCHEMES = ["M4", "P4"]
NAMES = ["alt", "wc"]


def schedule_fingerprint(outcome):
    """Byte-exact view of everything an outcome exposes downstream."""
    schedules = {}
    for pname, cproc in outcome.compiled.procedures.items():
        for head, schedule in cproc.schedules.items():
            schedules[(pname, head)] = [
                (op.cycle, op.slot, op.instr.opcode.value, op.instr.dest,
                 tuple(op.instr.srcs), op.instr.imm, op.speculative)
                for op in schedule.ops
            ]
    return {
        "cycles": outcome.result.cycles,
        "operations": outcome.result.operations,
        "output": outcome.result.output,
        "return": outcome.result.return_value,
        "code_bytes": outcome.layout.code_bytes,
        "layout_base": dict(outcome.layout.base),
        "layout_order": tuple(outcome.layout.procedure_order),
        "schedules": schedules,
    }


class TestTracerOffParity:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_traced_run_is_byte_identical(self, scheme_name):
        workload = workload_map()["wc"]
        train = workload.train_tape(TINY)
        test = workload.test_tape(TINY)
        plain = run_scheme(workload.program(), scheme_name, train, test)
        tracer = Tracer()
        traced = run_scheme(
            workload.program(), scheme_name, train, test, tracer=tracer
        )
        assert schedule_fingerprint(traced) == schedule_fingerprint(plain)
        # ... and the tracer actually observed the pipeline.
        assert tracer.decisions
        assert tracer.spans
        assert tracer.exit_histograms


class TestSerialParallelDeterminism:
    def _span_view(self, tracer):
        # ts/dur/pid are wall-clock facts; name + args are the
        # deterministic part of the stream.
        return [(s["name"], s["args"]) for s in tracer.spans]

    def test_jobs2_merge_matches_serial_exactly(self):
        serial_tracer = Tracer()
        serial = run_suite(SCHEMES, NAMES, scale=TINY, tracer=serial_tracer)
        parallel_tracer = Tracer()
        parallel = run_suite(
            SCHEMES,
            NAMES,
            scale=TINY,
            jobs=2,
            min_parallel_tasks=0,
            tracer=parallel_tracer,
        )
        assert list(parallel) == list(serial)
        # Decisions carry no timestamps: merged-in-request-order worker
        # tracers must reproduce the serial stream *exactly*.
        assert parallel_tracer.decisions == serial_tracer.decisions
        assert self._span_view(parallel_tracer) == self._span_view(
            serial_tracer
        )
        assert (
            parallel_tracer.exit_histograms
            == serial_tracer.exit_histograms
        )
        # ...while the spans really did come from worker processes.
        pids = {s["pid"] for s in parallel_tracer.spans}
        assert len(pids) > 1

    def test_tracer_does_not_change_suite_results(self):
        plain = run_suite(SCHEMES, ["alt"], scale=TINY)
        traced = run_suite(SCHEMES, ["alt"], scale=TINY, tracer=Tracer())
        for pair in plain:
            assert schedule_fingerprint(
                traced[pair]
            ) == schedule_fingerprint(plain[pair])


class TestExplain:
    @pytest.fixture(scope="class")
    def wc_p4(self):
        return run_traced("wc", "P4", scale=TINY)

    def test_explain_hottest_superblock(self, wc_p4):
        tracer, outcome = wc_p4
        report = explain(tracer, outcome)
        assert report["scheme"] == "P4"
        assert report["entries"] > 0
        assert report["selection"], "selection chain must be recorded"
        assert report["selection"][0]["action"] == "seed"
        assert all(op["origin"] for op in report["schedule"])
        text = format_explain(report)
        assert "formation decisions" in text
        assert "seed" in text

    def test_explain_specific_head(self, wc_p4):
        tracer, outcome = wc_p4
        hottest = explain(tracer, outcome)
        report = explain(
            tracer, outcome, proc=hottest["proc"], head=hottest["head"]
        )
        assert report["head"] == hottest["head"]

    def test_explain_unknown_head_raises(self, wc_p4):
        tracer, outcome = wc_p4
        with pytest.raises(ValueError):
            explain(tracer, outcome, proc="nope")


class TestTraceDiff:
    @pytest.fixture(scope="class")
    def diffed(self):
        tracer_a, outcome_a = run_traced("wc", "M4", scale=0.25)
        tracer_b, outcome_b = run_traced("wc", "P4", scale=0.25)
        report = trace_diff(
            tracer_a,
            tracer_b,
            "M4",
            "P4",
            cycles_a=outcome_a.result.cycles,
            cycles_b=outcome_b.result.cycles,
        )
        return tracer_a, tracer_b, outcome_a, outcome_b, report

    def test_names_first_diverging_decision(self, diffed):
        _, _, _, _, report = diffed
        div = report["first_divergence"]
        assert div is not None
        assert report["divergence_phase"] == "select"
        assert div["proc"] and div["head"]
        # Both sides of the divergence are real formation decisions (or a
        # missing step on one side).
        for side in ("a", "b"):
            record = div[side]
            assert record is None or record["kind"] == "select"

    def test_path_scheme_exits_later(self, diffed):
        tracer_a, tracer_b, _, _, report = diffed
        assert report["later_exits"], (
            "P4 must exit some superblock later than M4"
        )
        mean_a = mean_exit_cycles(tracer_a)
        mean_b = mean_exit_cycles(tracer_b)
        row = report["later_exits"][0]
        key = (row["proc"], row["head"])
        assert mean_b[key] > mean_a[key]

    def test_cycle_delta_attributed(self, diffed):
        _, _, outcome_a, outcome_b, report = diffed
        assert report["cycles"]["delta"] == (
            outcome_b.result.cycles - outcome_a.result.cycles
        )
        assert report["cycle_attribution"]
        assert any(
            row["delta"] != 0 for row in report["cycle_attribution"]
        )

    def test_identical_runs_have_no_divergence(self):
        tracer_a, _ = run_traced("alt", "M4", scale=TINY)
        tracer_b, _ = run_traced("alt", "M4", scale=TINY)
        report = trace_diff(tracer_a, tracer_b, "M4", "M4")
        assert report["first_divergence"] is None
        assert "identical" in format_trace_diff(report)

    def test_selection_chains_group_by_head(self, diffed):
        tracer_a, _, _, _, _ = diffed
        chains = decision_chains(tracer_a, "select")
        assert chains
        for (proc, head), chain in chains.items():
            assert chain[0]["action"] == "seed"
            assert all(r["head"] == head for r in chain)

    def test_format_mentions_divergence_and_exits(self, diffed):
        _, _, _, _, report = diffed
        text = format_trace_diff(report)
        assert "first diverging decision" in text
        assert "exits later" in text
        assert "P4" in text and "M4" in text


class TestCLI:
    def test_explain_verb(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        code = main(
            ["explain", "wc", "--scheme", "P4", "--scale", "0.1",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "formation decisions" in out
        assert "schedule" in out
        document = json.loads(out_path.read_text())
        assert document["repro"]["decisions"]

    def test_trace_diff_verb(self, capsys, tmp_path):
        out_path = tmp_path / "diff.json"
        code = main(
            ["trace-diff", "wc", "--schemes", "M4", "P4",
             "--scale", "0.1", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "first diverging decision" in out
        report = json.loads(out_path.read_text())
        assert report["first_divergence"] is not None
        assert report["cycles"]["M4"] > 0
