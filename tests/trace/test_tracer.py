"""Unit tests for the decision tracer and its Perfetto export."""

import json

import pytest

from repro.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
    to_trace_events,
    tspan,
    write_trace,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=0.5):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestTracer:
    def test_decisions_carry_context_labels(self):
        tracer = Tracer()
        with tracer.context(workload="wc", scheme="P4"):
            tracer.decision("select", proc="main", head="A", action="seed")
        tracer.decision("select", proc="main", head="B", action="seed")
        assert tracer.decisions[0]["workload"] == "wc"
        assert tracer.decisions[0]["scheme"] == "P4"
        assert "workload" not in tracer.decisions[1]

    def test_nested_contexts_stack_and_restore(self):
        tracer = Tracer()
        with tracer.context(workload="wc"):
            with tracer.context(scheme="M4"):
                tracer.decision("x")
            tracer.decision("y")
        record_x, record_y = tracer.decisions
        assert record_x["scheme"] == "M4" and record_x["workload"] == "wc"
        assert "scheme" not in record_y and record_y["workload"] == "wc"

    def test_decisions_have_no_timestamps(self):
        tracer = Tracer()
        tracer.decision("select", proc="main", head="A")
        assert "ts" not in tracer.decisions[0]
        assert "t" not in tracer.decisions[0]
        assert "pid" not in tracer.decisions[0]

    def test_span_records_microseconds(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("layout", proc="main"):
            pass
        (span,) = tracer.spans
        assert span["name"] == "layout"
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["dur"] == pytest.approx(0.5e6)
        assert span["args"] == {"proc": "main"}

    def test_span_yields_args_dict(self):
        tracer = Tracer()
        with tracer.span("formation.form") as args:
            args["superblocks"] = 7
        assert tracer.spans[0]["args"]["superblocks"] == 7

    def test_tspan_is_nullcontext_without_tracer(self):
        with tspan(None, "anything"):
            pass  # must not raise, must not allocate a tracer

    def test_exit_histograms_key_on_labels(self):
        tracer = Tracer()
        with tracer.context(workload="wc", scheme="P4"):
            tracer.exit_cycle("main", "A", 3)
            tracer.exit_cycle("main", "A", 3)
            tracer.exit_cycle("main", "A", 9)
        with tracer.context(workload="wc", scheme="M4"):
            tracer.exit_cycle("main", "A", 1)
        assert tracer.exit_histograms[("wc", "P4", "main", "A")] == {
            3: 2,
            9: 1,
        }
        # histogram() sums over label contexts
        assert tracer.histogram("main", "A") == {3: 2, 9: 1, 1: 1}

    def test_merge_concatenates_and_sums(self):
        a, b = Tracer(), Tracer()
        a.decision("select", proc="p", head="h")
        b.decision("enlarge", proc="p", head="h")
        with a.span("layout"):
            pass
        with b.span("simulate.ideal"):
            pass
        a.exit_cycle("p", "h", 2)
        b.exit_cycle("p", "h", 2)
        b.exit_cycle("p", "h", 5)
        a.merge(b)
        assert [d["kind"] for d in a.decisions] == ["select", "enlarge"]
        assert [s["name"] for s in a.spans] == ["layout", "simulate.ideal"]
        assert a.exit_histograms[(None, None, "p", "h")] == {2: 2, 5: 1}


def populated_tracer():
    tracer = Tracer(clock=FakeClock(step=0.25))
    with tracer.context(workload="wc", scheme="P4"):
        tracer.decision(
            "select",
            selector="path",
            proc="main",
            head="A",
            step=1,
            action="extend",
            chosen="B",
            freq=42,
            alternatives=[["C", 7], ["D", 0]],
        )
        with tracer.span("formation.form", proc="main"):
            pass
        tracer.exit_cycle("main", "A", 3)
        tracer.exit_cycle("main", "A", 11)
        tracer.exit_cycle("main", "A", 11)
    return tracer


class TestPerfettoRoundTrip:
    def test_round_trip_is_exact(self, tmp_path):
        tracer = populated_tracer()
        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        back = read_trace(path)
        assert back.decisions == tracer.decisions
        assert back.spans == tracer.spans
        assert back.exit_histograms == tracer.exit_histograms

    def test_file_is_perfetto_loadable_shape(self, tmp_path):
        tracer = populated_tracer()
        path = tmp_path / "trace.json"
        count = write_trace(tracer, path)
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count == 1
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "repro"
        assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        payload = document["repro"]
        assert payload["schema_version"] == TRACE_SCHEMA_VERSION
        assert payload["decisions"] == tracer.decisions
        # JSON object keys are strings; counts survive.
        assert payload["exit_histograms"][0]["hist"] == {"3": 1, "11": 2}

    def test_unknown_schema_version_rejected(self, tmp_path):
        tracer = populated_tracer()
        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        document = json.loads(path.read_text())
        document["repro"]["schema_version"] = TRACE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema version"):
            read_trace(path)

    def test_empty_tracer_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        assert write_trace(Tracer(), path) == 0
        back = read_trace(path)
        assert back.decisions == []
        assert back.spans == []
        assert back.exit_histograms == {}
