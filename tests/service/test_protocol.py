"""Wire-protocol round trips and socket-path resolution."""

import json
from pathlib import Path

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    SOCKET_ENV,
    ProtocolError,
    decode_message,
    default_socket_path,
    encode_message,
    pack,
    unpack,
)


class TestMessages:
    def test_round_trip(self):
        message = {"op": "submit", "schemes": ["M4"], "scale": 0.5}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message

    def test_sorted_keys_are_deterministic(self):
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b

    def test_one_line_per_message(self):
        line = encode_message({"text": "with\nnewline"})
        # JSON escapes the embedded newline; framing stays line-oriented.
        assert line.count(b"\n") == 1
        assert decode_message(line)["text"] == "with\nnewline"

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")

    def test_version_is_an_int(self):
        assert isinstance(PROTOCOL_VERSION, int)


class TestPack:
    def test_round_trips_arbitrary_objects(self):
        payload = {"cycles": 123, "nested": [1, (2, 3)]}
        assert unpack(pack(payload)) == payload

    def test_packed_artifact_survives_json(self):
        packed = pack({"k": "v"})
        line = encode_message({"outcome": packed})
        assert unpack(json.loads(line)["outcome"]) == {"k": "v"}


class TestSocketPath:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SOCKET_ENV, str(tmp_path / "custom.sock"))
        assert default_socket_path() == tmp_path / "custom.sock"

    def test_xdg_runtime_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(SOCKET_ENV, raising=False)
        monkeypatch.setenv("XDG_RUNTIME_DIR", str(tmp_path))
        assert default_socket_path() == tmp_path / "repro-service.sock"

    def test_falls_back_next_to_cache(self, monkeypatch, tmp_path):
        monkeypatch.delenv(SOCKET_ENV, raising=False)
        monkeypatch.delenv("XDG_RUNTIME_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = default_socket_path()
        assert path == tmp_path / "cache" / "service.sock"
        assert isinstance(path, Path)
