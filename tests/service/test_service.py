"""End-to-end tests for the experiment daemon.

One daemon subprocess (module-scoped, private socket, private cache dir)
backs the client-facing tests; parity tests compare its results against
the in-process engine computing from the same inputs.
"""

import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.cache import ExperimentCache
from repro.experiments.harness import run_suite
from repro.metrics import MetricsSink
from repro.service.client import (
    ServiceClient,
    ServiceError,
    run_suite_service,
    service_available,
)
from repro.trace.tracer import Tracer

WORKLOADS = ["alt", "com"]
SCHEMES = ["M4", "P4"]
SCALE = 0.25


def _wait_for_socket(path: Path, proc: subprocess.Popen, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (exit {proc.returncode})"
            )
        if path.exists() and service_available(path):
            return
        time.sleep(0.2)
    raise TimeoutError(f"daemon socket {path} never came up")


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A live daemon on a private socket with a private shared cache."""
    root = tmp_path_factory.mktemp("service")
    socket_path = root / "svc.sock"
    cache_dir = root / "cache"
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--socket",
            str(socket_path),
            "--workers",
            "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        _wait_for_socket(socket_path, proc)
        yield {"socket": socket_path, "cache_dir": cache_dir, "proc": proc}
    finally:
        if proc.poll() is None:
            try:
                with ServiceClient(socket_path, timeout=30.0) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


class TestHandshake:
    def test_hello_reports_version_and_workers(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            hello = client.hello()
        assert hello["workers"] == 2
        assert hello["pid"] > 0

    def test_status_counts_workers(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            status = client.status()
        assert status["workers"] == 2
        assert len(status["worker_pids"]) == 2
        assert status["uptime_seconds"] > 0

    def test_service_available(self, daemon, tmp_path):
        assert service_available(daemon["socket"])
        assert not service_available(tmp_path / "nothing.sock")


class TestSubmit:
    def test_results_match_in_process_engine(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            served = client.submit(SCHEMES, workloads=WORKLOADS, scale=SCALE)
        local = run_suite(SCHEMES, WORKLOADS, scale=SCALE)
        assert set(served.results) == set(local.keys())
        for pair, outcome in served.results.items():
            expected = local[pair]
            assert outcome.result.cycles == expected.result.cycles
            assert outcome.result.operations == expected.result.operations
            # The simulation result is the paper's unit of comparison; it
            # must be bit-identical across engines, not merely equal.
            assert pickle.dumps(outcome.result) == pickle.dumps(
                expected.result
            )
            assert outcome.reference.output == expected.reference.output

    def test_repeat_submit_served_from_cache(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            out = client.submit(SCHEMES, workloads=WORKLOADS, scale=SCALE)
        assert set(out.dispositions.values()) == {"cache"}
        assert out.stats["cache"] == len(SCHEMES) * len(WORKLOADS)
        assert out.stats["computed"] == 0

    def test_request_order_is_preserved(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            out = client.submit(SCHEMES, workloads=WORKLOADS, scale=SCALE)
        expected = [(w, s) for w in WORKLOADS for s in SCHEMES]
        assert list(out.results) == expected

    def test_unknown_workload_is_an_error_not_a_hangup(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            with pytest.raises(ServiceError, match="unknown workloads"):
                client.submit(SCHEMES, workloads=["nope"])
            # The connection survives a rejected submit.
            out = client.submit(["BB"], workloads=["alt"], scale=SCALE)
            assert ("alt", "BB") in out.results

    def test_unknown_scheme_is_an_error(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            with pytest.raises(ServiceError, match="unknown scheme"):
                client.submit(["Z9"], workloads=["alt"])

    def test_metrics_and_trace_stream_back(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            out = client.submit(
                ["BB"],
                workloads=["alt"],
                scale=SCALE,
                no_cache=True,
                with_metrics=True,
                with_tracer=True,
            )
        assert out.metrics is not None
        assert out.metrics.stage_seconds  # stage timers crossed the wire
        assert any(
            name.startswith("profile.") for name in out.metrics.stage_seconds
        )
        assert out.tracer is not None
        assert len(out.tracer.spans) > 0


class TestInFlightDedup:
    def test_second_identical_request_computes_nothing(self, daemon):
        """Two concurrent clients, identical no-cache grids: exactly one
        computes, the other rides the in-flight futures."""
        outcomes = {}
        errors = []

        def submit(tag):
            try:
                with ServiceClient(daemon["socket"]) as client:
                    client.hello()
                    outcomes[tag] = client.submit(
                        SCHEMES,
                        workloads=WORKLOADS,
                        scale=SCALE,
                        no_cache=True,
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = len(SCHEMES) * len(WORKLOADS)
        computed = sum(o.stats["computed"] for o in outcomes.values())
        dedup = sum(o.stats["dedup"] for o in outcomes.values())
        assert computed == total
        assert dedup == total
        # Both clients still get full, identical result sets.
        pairs = {(w, s) for w in WORKLOADS for s in SCHEMES}
        for out in outcomes.values():
            assert set(out.results) == pairs
        a, b = outcomes["a"], outcomes["b"]
        for pair in pairs:
            assert (
                a.results[pair].result.cycles == b.results[pair].result.cycles
            )


class TestSharedCache:
    def test_cache_dir_is_sharded(self, daemon):
        cache = ExperimentCache(path=daemon["cache_dir"])
        entries = list(Path(cache.path).glob("*/*.pkl"))
        flat = list(Path(cache.path).glob("*.pkl"))
        assert entries, "daemon stored nothing in the shared cache"
        assert not flat, "daemon wrote flat (unsharded) cache entries"

    def test_second_client_reads_first_clients_results(self, daemon):
        """A different client process (here: a fresh connection) gets
        cache dispositions for work another client caused."""
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            before = client.status()["counters"].get(
                "service.tasks.computed", 0
            )
            out = client.submit(SCHEMES, workloads=WORKLOADS, scale=SCALE)
            after = client.status()["counters"].get(
                "service.tasks.computed", 0
            )
        assert set(out.dispositions.values()) == {"cache"}
        assert after == before


class TestFallback:
    def test_run_suite_service_uses_daemon(self, daemon):
        results, engine, outcome = run_suite_service(
            SCHEMES,
            workload_names=WORKLOADS,
            scale=SCALE,
            socket_path=daemon["socket"],
        )
        assert engine == "service"
        assert set(results) == {(w, s) for w in WORKLOADS for s in SCHEMES}

    def test_falls_back_in_process_when_no_daemon(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        results, engine, outcome = run_suite_service(
            ["BB"],
            workload_names=["alt"],
            scale=SCALE,
            socket_path=tmp_path / "no-daemon.sock",
        )
        assert engine == "in-process"
        assert ("alt", "BB") in results
        assert outcome.dispositions[("alt", "BB")] == "in-process"

    def test_no_fallback_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="no experiment service"):
            run_suite_service(
                ["BB"],
                workload_names=["alt"],
                socket_path=tmp_path / "no-daemon.sock",
                fallback=False,
            )

    def test_fallback_matches_daemon_results(self, daemon, tmp_path,
                                             monkeypatch):
        served, engine, _ = run_suite_service(
            ["M4"],
            workload_names=["alt"],
            scale=SCALE,
            socket_path=daemon["socket"],
        )
        assert engine == "service"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        local, engine, _ = run_suite_service(
            ["M4"],
            workload_names=["alt"],
            scale=SCALE,
            socket_path=tmp_path / "no-daemon.sock",
        )
        assert engine == "in-process"
        pair = ("alt", "M4")
        assert pickle.dumps(served[pair].result) == pickle.dumps(
            local[pair].result
        )


class TestTelemetry:
    def test_status_reports_request_histograms(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            client.submit(SCHEMES, workloads=WORKLOADS, scale=SCALE)
            status = client.status()
        histograms = status["histograms"]
        # Every submit records plan/stream/total spans (cache hits
        # included); compute spans only exist for computed tasks.
        for span in (
            "service.request.plan",
            "service.request.stream",
            "service.request.total",
        ):
            assert histograms[span]["count"] >= 1, span
            assert histograms[span]["max_ms"] >= 0.0
        # Summaries are the compact shape the status table renders.
        assert set(histograms["service.request.total"]) == {
            "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
        }

    def test_computed_work_records_compute_spans(self, daemon):
        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            client.submit(
                ["BB"], workloads=["com"], scale=SCALE, no_cache=True
            )
            status = client.status()
        histograms = status["histograms"]
        assert histograms["service.task.compute"]["count"] >= 1
        assert histograms["service.task.queue_wait"]["count"] >= 1

    def test_status_table_renders(self, daemon):
        from repro.service.__main__ import _format_status

        with ServiceClient(daemon["socket"]) as client:
            client.hello()
            status = client.status()
        text = _format_status(status)
        assert "uptime" in text
        assert "Lifetime counters" in text
        assert "workers: 2" in text
        if status["histograms"]:
            assert "Request latency" in text
            assert "p99 ms" in text

    def test_self_report_persists_metrics_jsonl(self, tmp_path_factory):
        """A daemon started with --metrics-out leaves a schema-v2 JSONL
        with self-report events and histogram records on shutdown."""
        root = tmp_path_factory.mktemp("telemetry")
        socket_path = root / "svc.sock"
        metrics_path = root / "daemon_metrics.jsonl"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(root / "cache")
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--socket",
                str(socket_path),
                "--workers",
                "1",
                "--metrics-out",
                str(metrics_path),
                "--self-report-interval",
                "0.2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            _wait_for_socket(socket_path, proc)
            with ServiceClient(socket_path, timeout=60.0) as client:
                client.hello()
                client.submit(["BB"], workloads=["alt"], scale=SCALE)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not metrics_path.exists():
                time.sleep(0.1)
            with ServiceClient(socket_path, timeout=30.0) as client:
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        sink = MetricsSink.read_jsonl(metrics_path)
        assert sink.schema_version == 2
        reports = [
            e for e in sink.events if e["event"] == "service.self_report"
        ]
        assert reports, "no self-report events persisted"
        # The final (shutdown) snapshot carries the lifetime counters and
        # per-span summaries.
        final = reports[-1]
        assert final["counters"].get("service.requests", 0) >= 1
        assert "service.request.total" in final["histograms"]
        assert sink.histograms["service.request.total"].count >= 1

    def test_self_report_events_are_bounded(self, tmp_path):
        """A long-lived daemon's event log must not grow by one snapshot
        per interval forever: older self-reports are dropped once the
        ring is full, and other events are untouched."""
        from repro.service.server import MAX_SELF_REPORTS, ExperimentService

        service = ExperimentService(tmp_path / "svc.sock")
        service.metrics.event("service.submit", id="keep-me")
        for _ in range(MAX_SELF_REPORTS * 3):
            service._self_report_event()
        reports = [
            e
            for e in service.metrics.events
            if e["event"] == "service.self_report"
        ]
        assert len(reports) == MAX_SELF_REPORTS
        # The newest snapshot survives, and non-snapshot events do too.
        assert reports[-1] is service.metrics.events[-1]
        assert any(
            e.get("id") == "keep-me" for e in service.metrics.events
        )


class TestShutdown:
    def test_clean_shutdown_removes_socket_and_exits_zero(
        self, tmp_path_factory
    ):
        """A dedicated daemon (not the shared fixture) shuts down cleanly."""
        root = tmp_path_factory.mktemp("shutdown")
        socket_path = root / "svc.sock"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(root / "cache")
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--socket",
                str(socket_path),
                "--workers",
                "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            _wait_for_socket(socket_path, proc)
            with ServiceClient(socket_path, timeout=30.0) as client:
                bye = client.shutdown()
            assert bye["type"] == "bye"
            assert proc.wait(timeout=60) == 0
            assert not socket_path.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
