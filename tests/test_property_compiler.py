"""Property-based whole-compiler test: random MiniC programs must produce
identical output under every formation scheme, with and without register
pressure.

This is the reproduction's strongest correctness weapon: it exercises
selection, tail duplication, enlargement, renaming, speculation, scheduling,
allocation, and simulation against the reference interpreter on programs no
human wrote.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.interp import run_program
from repro.pipeline import run_scheme
from repro.scheduling import MachineModel

SCHEMES = ["BB", "M4", "M16", "P4", "P4e"]

_BIN_OPS = ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="]


class _ProgramGenerator:
    """Generates small, always-terminating MiniC programs."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.vars = []
        #: loop counters: readable but never assignment targets (assigning
        #: to a live counter could make the program non-terminating).
        self.readonly = set()
        self.counter = 0

    def fresh_var(self) -> str:
        name = f"v{self.counter}"
        self.counter += 1
        return name

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        choices = ["lit", "lit"]
        if self.vars:
            choices += ["var", "var", "var"]
        if depth < 3:
            choices += ["bin", "bin", "unary", "mem", "logic"]
        kind = rng.choice(choices)
        if kind == "lit":
            return str(rng.randint(-20, 20))
        if kind == "var":
            return rng.choice(self.vars)
        if kind == "unary":
            return f"(-{self.expr(depth + 1)})"
        if kind == "mem":
            return f"mem[{rng.randint(0, 30)}]"
        if kind == "logic":
            op = rng.choice(["&&", "||"])
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        op = rng.choice(_BIN_OPS)
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    def statements(self, depth: int, budget: int) -> str:
        rng = self.rng
        lines = []
        for _ in range(rng.randint(1, budget)):
            kind = rng.choice(
                ["decl", "assign", "print", "store", "if", "loop"]
                if depth < 2
                else ["decl", "assign", "print", "store"]
            )
            writable = [v for v in self.vars if v not in self.readonly]
            if kind == "decl" or (kind == "assign" and not writable):
                name = self.fresh_var()
                lines.append(f"var {name} = {self.expr()};")
                self.vars.append(name)
            elif kind == "assign":
                name = rng.choice(writable)
                lines.append(f"{name} = {self.expr()};")
            elif kind == "print":
                lines.append(f"print({self.expr()});")
            elif kind == "store":
                lines.append(
                    f"mem[{rng.randint(0, 30)}] = {self.expr()};"
                )
            elif kind == "if":
                # Variables declared inside a branch may be undefined at run
                # time on the other path: hide them from later statements.
                saved = list(self.vars)
                then = self.statements(depth + 1, 2)
                if rng.random() < 0.5:
                    self.vars = list(saved)
                    orelse = self.statements(depth + 1, 2)
                    self.vars = saved
                    lines.append(
                        f"if ({self.expr()}) {{ {then} }}"
                        f" else {{ {orelse} }}"
                    )
                else:
                    self.vars = saved
                    lines.append(f"if ({self.expr()}) {{ {then} }}")
            elif kind == "loop":
                counter = self.fresh_var()
                trip = rng.randint(1, 6)
                saved = list(self.vars)
                self.vars.append(counter)
                self.readonly.add(counter)
                body = self.statements(depth + 1, 2)
                self.vars = saved
                lines.append(
                    f"for (var {counter} = 0; {counter} < {trip};"
                    f" {counter} = {counter} + 1)"
                    f" {{ {body} }}"
                )
        return " ".join(lines)

    def program(self) -> str:
        body = self.statements(0, 6)
        trailer = " ".join(f"print({name});" for name in self.vars[:4])
        return f"func main() {{ {body} {trailer} }}"


def generate_program(seed: int) -> str:
    return _ProgramGenerator(random.Random(seed)).program()


class TestRandomPrograms:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_schemes_agree_with_interpreter(self, seed):
        source = generate_program(seed)
        program = compile_source(source)
        reference = run_program(program, input_tape=[])
        for name in SCHEMES:
            out = run_scheme(
                compile_source(source), name, [], [], check_output=False
            )
            assert out.result.output == reference.output, (
                f"seed {seed}, scheme {name}"
            )
            assert out.result.return_value == reference.return_value

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_tiny_register_file_agrees(self, seed):
        source = generate_program(seed)
        program = compile_source(source)
        reference = run_program(program, input_tape=[])
        tiny = MachineModel(num_registers=20)
        out = run_scheme(
            compile_source(source),
            "P4",
            [],
            [],
            machine=tiny,
            check_output=False,
        )
        assert out.result.output == reference.output, f"seed {seed}"

    def test_generator_produces_valid_programs(self):
        for seed in range(30):
            source = generate_program(seed)
            program = compile_source(source)  # must not raise
            run_program(program, input_tape=[])
