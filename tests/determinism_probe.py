"""Print a deterministic fingerprint of the whole toolchain.

Run as a subprocess under different ``PYTHONHASHSEED`` values by
``tests/test_determinism.py``; any dependence on hash ordering anywhere in
the compiler, scheduler, allocator, layout, or fuzzer shows up as a byte
difference in this script's stdout.
"""

from repro.ir.instructions import format_instruction
from repro.pipeline import run_scheme
from repro.validation.genprog import generate_source
from repro.workloads import get_workload

# gcc has inlinable call sites, so its P4i run exercises the inliner's
# site ranking / label cloning under varying hash seeds.
WORKLOADS = (
    ("alt", ("BB", "P4")),
    ("wc", ("BB", "P4")),
    ("gcc", ("P4i", "P4k")),
)
SCALE = 0.25


def main() -> None:
    for seed in (0, 1, 2):
        print(f"=== genprog seed {seed} ===")
        print(generate_source(seed), end="")
    for name, schemes in WORKLOADS:
        workload = get_workload(name)
        program = workload.fresh_program()
        train = workload.train_tape(SCALE)
        test = workload.test_tape(SCALE)
        for scheme in schemes:
            outcome = run_scheme(program, scheme, train, test)
            result = outcome.result
            print(
                f"=== {name}/{scheme}: cycles={result.cycles}"
                f" ops={result.operations} output={result.output[:8]}"
                f" ret={result.return_value} ==="
            )
            # Iterate in natural (insertion) order on purpose: sorting here
            # would mask container-ordering nondeterminism.
            for proc_name, proc in outcome.compiled.procedures.items():
                for head, schedule in proc.schedules.items():
                    print(f"--- {proc_name}/{head} ---")
                    for op in schedule.ops:
                        print(
                            f"{op.cycle}.{op.slot}"
                            f"{' s' if op.speculative else ''}"
                            f"  {format_instruction(op.instr)}"
                        )


if __name__ == "__main__":
    main()
