"""Streaming-vs-batch profile parity across the whole workload suite.

The record-once/replay-many engine's acceptance bar: for every workload
and every profiling depth, replaying the recorded execution trace through
the batch profilers must produce profiles identical to running the live
observers — edge, general path, and forward path alike.  One trace per
workload is recorded once (module fixture) and replayed at every depth;
the streaming baseline re-runs the interpreter each time, exactly as the
pre-trace engine did.
"""

import pytest

from repro.profiling import (
    collect_profiles,
    collect_profiles_streaming,
    profiles_from_trace,
    record_trace,
)
from repro.workloads.suite import workload_map

SCALE = 0.06
DEPTHS = (1, 3, 7, 15)
ALL_NAMES = list(workload_map())


def edge_fingerprint(profile):
    return {
        "blocks": profile.blocks,
        "edges": profile.edges,
        "entries": profile.entries,
    }


def path_fingerprint(profile):
    return {
        "paths": profile.paths,
        "depth": profile.depth,
        "branch_blocks": profile.branch_blocks,
    }


def result_fingerprint(result):
    return {
        "output": result.output,
        "return_value": result.return_value,
        "instructions": result.instructions,
        "branches": result.branches,
        "blocks": result.blocks,
        "calls": result.calls,
        "per_procedure": result.per_procedure,
    }


@pytest.fixture(scope="module")
def traced_runs():
    """One recorded training run per workload, shared by every depth."""
    runs = {}
    for name, workload in workload_map().items():
        program = workload.program()
        train = workload.train_tape(SCALE)
        runs[name] = (program, train, record_trace(program, input_tape=train))
    return runs


class TestBatchMatchesStreaming:
    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_profiles_identical(self, traced_runs, name, depth):
        program, train, traced = traced_runs[name]
        streaming = collect_profiles_streaming(
            program, input_tape=train, depth=depth, include_forward=True
        )
        batch = profiles_from_trace(
            program, traced, depth=depth, include_forward=True
        )
        assert edge_fingerprint(batch.edge) == edge_fingerprint(
            streaming.edge
        )
        assert path_fingerprint(batch.path) == path_fingerprint(
            streaming.path
        )
        assert path_fingerprint(batch.forward) == path_fingerprint(
            streaming.forward
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_run_results_identical(self, traced_runs, name):
        program, train, traced = traced_runs[name]
        streaming = collect_profiles_streaming(program, input_tape=train)
        assert result_fingerprint(traced.result) == result_fingerprint(
            streaming.result
        )


class TestDropInEntryPoint:
    def test_collect_profiles_matches_streaming(self):
        workload = workload_map()["wc"]
        program = workload.program()
        train = workload.train_tape(SCALE)
        batch = collect_profiles(
            program, input_tape=train, depth=7, include_forward=True
        )
        streaming = collect_profiles_streaming(
            program, input_tape=train, depth=7, include_forward=True
        )
        assert edge_fingerprint(batch.edge) == edge_fingerprint(
            streaming.edge
        )
        assert path_fingerprint(batch.path) == path_fingerprint(
            streaming.path
        )
        assert path_fingerprint(batch.forward) == path_fingerprint(
            streaming.forward
        )

    def test_depth_validated(self):
        workload = workload_map()["alt"]
        program = workload.program()
        with pytest.raises(ValueError):
            collect_profiles(program, input_tape=[1, -1], depth=0)
        traced = record_trace(program, input_tape=[1, -1])
        with pytest.raises(ValueError):
            profiles_from_trace(program, traced, depth=0)
