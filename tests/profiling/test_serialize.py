"""Tests for profile JSON round-tripping."""

import io

import pytest

from repro.profiling import (
    collect_profiles,
    load_profile,
    profiles_from_trace,
    record_trace,
    save_profile,
)
from repro.profiling.serialize import (
    edge_profile_from_dict,
    path_profile_from_dict,
    trace_from_dict,
    trace_to_dict,
)

from tests.support import call_program, diamond_program


def bundle():
    return collect_profiles(diamond_program(), input_tape=[10, 11, 60, 10, -1])


class TestRoundTrip:
    def test_edge_profile_roundtrip(self):
        original = bundle().edge
        stream = io.StringIO()
        save_profile(original, stream)
        stream.seek(0)
        restored = load_profile(stream)
        assert restored.edges == original.edges
        assert restored.blocks == original.blocks
        assert restored.entries == original.entries

    def test_path_profile_roundtrip(self):
        original = bundle().path
        stream = io.StringIO()
        save_profile(original, stream)
        stream.seek(0)
        restored = load_profile(stream)
        assert restored.paths == original.paths
        assert restored.depth == original.depth
        assert restored.branch_blocks == original.branch_blocks

    def test_queries_survive_roundtrip(self):
        original = bundle().path
        stream = io.StringIO()
        save_profile(original, stream)
        stream.seek(0)
        restored = load_profile(stream)
        trace = ("A", "A_test")
        assert restored.most_likely_path_successor(
            "main", trace, ("B", "X")
        ) == original.most_likely_path_successor("main", trace, ("B", "X"))

    def test_multi_procedure_profiles(self):
        profiles = collect_profiles(call_program(), input_tape=[4])
        stream = io.StringIO()
        save_profile(profiles.path, stream)
        stream.seek(0)
        restored = load_profile(stream)
        assert set(restored.paths) == {"main", "square"}

    def test_formation_accepts_restored_profiles(self):
        from repro.formation import form_superblocks, scheme

        profiles = bundle()
        edge_io, path_io = io.StringIO(), io.StringIO()
        save_profile(profiles.edge, edge_io)
        save_profile(profiles.path, path_io)
        edge_io.seek(0)
        path_io.seek(0)
        result = form_superblocks(
            diamond_program(),
            scheme("P4"),
            edge_profile=load_profile(edge_io),
            path_profile=load_profile(path_io),
        )
        assert result.superblocks["main"]


class TestTraceRoundTrip:
    def test_trace_roundtrip_is_equal(self):
        original = record_trace(
            diamond_program(), input_tape=[10, 11, 60, 10, -1]
        ).trace
        stream = io.StringIO()
        save_profile(original, stream)
        stream.seek(0)
        restored = load_profile(stream)
        assert restored == original

    def test_string_table_and_frames_survive(self):
        original = record_trace(call_program(), input_tape=[4]).trace
        restored = trace_from_dict(trace_to_dict(original))
        assert restored.proc_names == original.proc_names
        assert restored.labels == original.labels
        assert restored.frames == original.frames
        for frame_id in range(original.num_frames):
            assert restored.frame_labels(frame_id) == original.frame_labels(
                frame_id
            )

    def test_restored_trace_replays_to_same_profiles(self):
        program = call_program()
        traced = record_trace(program, input_tape=[4])
        stream = io.StringIO()
        save_profile(traced.trace, stream)
        stream.seek(0)
        traced.trace = load_profile(stream)
        replayed = profiles_from_trace(
            program, traced, depth=7, include_forward=True
        )
        direct = collect_profiles(
            program, input_tape=[4], depth=7, include_forward=True
        )
        assert replayed.edge.edges == direct.edge.edges
        assert replayed.path.paths == direct.path.paths
        assert replayed.forward.paths == direct.forward.paths

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"kind": "edge-profile"})


class TestErrors:
    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            load_profile(io.StringIO('{"kind": "mystery"}'))

    def test_cross_kind_constructors_reject(self):
        with pytest.raises(ValueError):
            edge_profile_from_dict({"kind": "path-profile"})
        with pytest.raises(ValueError):
            path_profile_from_dict({"kind": "edge-profile"})

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            save_profile(object(), io.StringIO())
