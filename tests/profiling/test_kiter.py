"""k-iteration path profiler tests: run-length histograms from replayed
traces, the unroll recommendation rule, and end-to-end P4k semantics."""

import pytest

from repro.pipeline import run_scheme
from repro.profiling import KIterConfig, KIterProfile, kiter_profile_from_trace
from repro.profiling import record_trace

from tests.support import (
    alternating_branch_trace,
    diamond_program,
    figure3_loop_program,
)


def profile_for(program, tape, config=None):
    traced = record_trace(program, input_tape=tape)
    return kiter_profile_from_trace(
        program, traced.trace, config or KIterConfig()
    )


class TestRunHistograms:
    def test_single_run_length(self):
        """The diamond loops once per input word: one run of n+1 arrivals."""
        program = diamond_program()
        n = 5
        profile = profile_for(program, alternating_branch_trace(n), KIterConfig(k=16))
        assert profile.loop_heads("main") == ("A",)
        assert profile.total_runs("main", "A") == 1
        # n words loop back n times; the -1 sentinel adds the final arrival.
        assert profile.runs["main"]["A"] == {n + 1: 1}
        assert profile.paths_observed == n + 1

    def test_cap_at_k(self):
        program = diamond_program()
        config = KIterConfig(k=4)
        profile = profile_for(program, alternating_branch_trace(12), config)
        assert profile.runs["main"]["A"] == {4: 1}

    def test_figure3_loop_observed(self):
        program = figure3_loop_program()
        profile = profile_for(program, [10, 0], KIterConfig(k=16))
        heads = profile.loop_heads("main")
        assert heads, "figure3 loop must register at least one loop head"
        assert profile.survivors("main", heads[0], 1) >= 1

    def test_invalid_k_rejected(self):
        program = diamond_program()
        traced = record_trace(program, input_tape=[-1])
        with pytest.raises(ValueError):
            kiter_profile_from_trace(program, traced.trace, KIterConfig(k=0))


class TestRecommendation:
    def make_profile(self, hist, k=8, min_fraction=0.5, min_runs=4):
        config = KIterConfig(k=k, min_fraction=min_fraction, min_runs=min_runs)
        return KIterProfile(config=config, runs={"main": {"L": dict(hist)}})

    def test_majority_run_length_wins(self):
        # 6 of 8 runs reach 6 iterations: recommend 6 over a default of 4.
        profile = self.make_profile({6: 6, 2: 2})
        assert profile.recommended_unroll("main", "L", 4) == 6

    def test_default_when_runs_short(self):
        profile = self.make_profile({2: 10})
        assert profile.recommended_unroll("main", "L", 4) == 4

    def test_default_when_too_few_runs(self):
        profile = self.make_profile({8: 2}, min_runs=4)
        assert profile.recommended_unroll("main", "L", 4) == 4

    def test_fraction_gate(self):
        # Only 4 of 10 runs reach 6: below the 0.5 survivor fraction.
        profile = self.make_profile({6: 4, 3: 6})
        assert profile.recommended_unroll("main", "L", 4) == 4

    def test_hints_only_above_default(self):
        profile = self.make_profile({8: 8})
        assert profile.unroll_hints("main", 4) == {"L": 8}
        assert profile.unroll_hints("main", 8) == {}

    def test_unknown_proc_empty(self):
        profile = self.make_profile({8: 8})
        assert profile.loop_heads("other") == ()
        assert profile.unroll_hints("other", 4) == {}


class TestEndToEnd:
    def test_p4k_output_matches_p4(self):
        program = diamond_program()
        tape = alternating_branch_trace(40)
        base = run_scheme(program, "P4", tape, tape)
        kit = run_scheme(program, "P4k", tape, tape)
        assert kit.result.output == base.result.output
        assert kit.result.return_value == base.result.return_value
