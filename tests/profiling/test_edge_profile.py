"""Tests for the edge (point) profiler."""

from repro.interp import run_program
from repro.profiling import EdgeProfiler, collect_profiles

from tests.support import call_program, diamond_program


def profile_diamond(tape):
    profiler = EdgeProfiler()
    run_program(diamond_program(), input_tape=tape, observer=profiler)
    return profiler.finalize()


class TestEdgeCounts:
    def test_counts_match_execution(self):
        # words: 10 -> B,C ; 11 -> B,Y ; 60 -> X
        profile = profile_diamond([10, 11, 60, -1])
        assert profile.edge_count("main", "A", "A_test") == 3
        assert profile.edge_count("main", "A_test", "B") == 2
        assert profile.edge_count("main", "A_test", "X") == 1
        assert profile.edge_count("main", "B", "C") == 1
        assert profile.edge_count("main", "B", "Y") == 1
        assert profile.edge_count("main", "A", "done") == 1

    def test_block_counts(self):
        profile = profile_diamond([10, 11, 60, -1])
        assert profile.block_count("main", "A") == 4
        assert profile.block_count("main", "B") == 2
        assert profile.block_count("main", "done") == 1

    def test_unseen_edge_is_zero(self):
        profile = profile_diamond([10, -1])
        assert profile.edge_count("main", "X", "A") == 0
        assert profile.edge_count("ghost", "A", "B") == 0

    def test_entry_counts(self):
        profiler = EdgeProfiler()
        run_program(call_program(), input_tape=[3], observer=profiler)
        profile = profiler.finalize()
        assert profile.entry_count("main") == 1
        assert profile.entry_count("square") == 3

    def test_call_does_not_create_cross_procedure_edges(self):
        profiler = EdgeProfiler()
        run_program(call_program(), input_tape=[2], observer=profiler)
        profile = profiler.finalize()
        for (src, dst) in profile.edges.get("main", {}):
            assert src in ("entry", "loop", "body", "done")
            assert dst in ("entry", "loop", "body", "done")

    def test_caller_edges_resume_after_call(self):
        profiler = EdgeProfiler()
        run_program(call_program(), input_tape=[2], observer=profiler)
        profile = profiler.finalize()
        # body -> loop edge happens after each call returns.
        assert profile.edge_count("main", "body", "loop") == 2


class TestDerivedQueries:
    def test_most_likely_successor(self):
        profile = profile_diamond([10, 10, 10, 60, -1])
        best = profile.most_likely_successor("main", "A_test")
        assert best == ("B", 3)

    def test_most_likely_predecessor(self):
        profile = profile_diamond([10, 10, 60, -1])
        best = profile.most_likely_predecessor("main", "A")
        # Two returns from C, one from X, plus program start (not an edge).
        assert best == ("C", 2)

    def test_branch_probability(self):
        profile = profile_diamond([10, 10, 10, 60, -1])
        p = profile.branch_probability("main", "A_test", "B")
        assert abs(p - 0.75) < 1e-9

    def test_branch_probability_unseen_block(self):
        profile = profile_diamond([10, -1])
        assert profile.branch_probability("main", "ghost", "B") == 0.0

    def test_blocks_by_count_sorted(self):
        profile = profile_diamond([10, 11, 60, -1])
        ranked = profile.blocks_by_count("main")
        counts = [c for _, c in ranked]
        assert counts == sorted(counts, reverse=True)
        assert ranked[0][0] == "A"

    def test_total_edges_matches_interpreter_blocks(self):
        bundle = collect_profiles(diamond_program(), input_tape=[10, 11, -1])
        # every block entry except each frame's first follows an edge
        assert bundle.edge.total_edges() == bundle.result.blocks - 1
