"""Property-based tests: the lazy path profiler must agree exactly with a
naive sliding-window recount of the block stream, for arbitrary streams and
depths."""

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import FunctionBuilder, build_program
from repro.profiling import GeneralPathProfiler

LABELS = ["a", "b", "c", "d"]


def synthetic_program(branchy=("a", "b", "c", "d")):
    """A complete graph over LABELS; blocks in ``branchy`` end in branches."""
    fb = FunctionBuilder("main")
    reg = fb.reg()
    for label in LABELS:
        blk = fb.block(label)
        if label in branchy:
            blk.mbr(reg, LABELS + ["exit"])
        else:
            blk.jmp(LABELS[0])
    fb.block("exit").ret()
    # Ensure entry is 'a'.
    return build_program(fb)


def naive_recount(
    stream: List[str], branchy: Tuple[str, ...], depth: int
) -> Dict[Tuple[str, ...], int]:
    """Reference implementation: recount every suffix of every window."""
    table: Dict[Tuple[str, ...], int] = {}
    for end in range(len(stream)):
        # Maximal window ending at ``end`` with <= depth branch blocks.
        start = end
        branches = 1 if stream[end] in branchy else 0
        while start > 0:
            candidate = stream[start - 1]
            extra = 1 if candidate in branchy else 0
            if branches + extra > depth:
                break
            branches += extra
            start -= 1
        window = tuple(stream[start : end + 1])
        for i in range(len(window)):
            suffix = window[i:]
            table[suffix] = table.get(suffix, 0) + 1
    return table


def lazy_profile(
    stream: List[str], branchy: Tuple[str, ...], depth: int
) -> Dict[Tuple[str, ...], int]:
    program = synthetic_program(branchy)
    profiler = GeneralPathProfiler(program, depth=depth)
    for label in stream:
        profiler.block_executed("main", frame_id=0, label=label)
    return profiler.finalize().paths.get("main", {})


@st.composite
def stream_and_depth(draw):
    stream = draw(st.lists(st.sampled_from(LABELS), min_size=1, max_size=60))
    depth = draw(st.integers(min_value=1, max_value=6))
    branchy = tuple(
        sorted(draw(st.sets(st.sampled_from(LABELS), min_size=1, max_size=4)))
    )
    return stream, branchy, depth


class TestLazyEqualsNaive:
    @given(stream_and_depth())
    @settings(max_examples=200, deadline=None)
    def test_equivalence(self, case):
        stream, branchy, depth = case
        assert lazy_profile(stream, branchy, depth) == naive_recount(
            stream, branchy, depth
        )

    def test_fixed_regression_case(self):
        stream = ["a", "b", "a", "b", "a", "c", "a", "b"]
        branchy = ("a", "b", "c", "d")
        for depth in (1, 2, 3, 8):
            assert lazy_profile(stream, branchy, depth) == naive_recount(
                stream, branchy, depth
            )

    @given(st.lists(st.sampled_from(LABELS), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_single_block_counts_are_histogram(self, stream):
        table = lazy_profile(stream, tuple(LABELS), depth=4)
        for label in set(stream):
            assert table[(label,)] == stream.count(label)

    @given(st.lists(st.sampled_from(LABELS), min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_pair_counts_are_adjacent_occurrences(self, stream):
        table = lazy_profile(stream, tuple(LABELS), depth=4)
        for x in LABELS:
            for y in LABELS:
                expected = sum(
                    1
                    for i in range(len(stream) - 1)
                    if stream[i] == x and stream[i + 1] == y
                )
                assert table.get((x, y), 0) == expected

    @given(st.lists(st.sampled_from(LABELS), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_distinct_windows_bounded_by_steps(self, stream):
        program = synthetic_program(tuple(LABELS))
        profiler = GeneralPathProfiler(program, depth=3)
        for label in stream:
            profiler.block_executed("main", 0, label)
        assert profiler.distinct_windows <= len(stream)
