"""Tests for the general path profiler, including the paper's Figure 1
ambiguity scenario and the marginalization invariant."""

from repro.interp import run_program
from repro.ir import FunctionBuilder, build_program
from repro.profiling import (
    GeneralPathProfiler,
    collect_profiles,
)

from tests.support import call_program, diamond_program, figure3_loop_program


def figure1_program():
    """The Figure 1 CFG, driven by the input tape.

    Per iteration the program reads ``entry`` (0 -> enter at A, 1 -> enter at
    X, negative -> stop) and ``exit`` (0 -> B goes to C, 1 -> B goes to Y).
    """
    fb = FunctionBuilder("main")
    top = fb.block("top")
    a = fb.block("A")
    x = fb.block("X")
    b = fb.block("B")
    c = fb.block("C")
    y = fb.block("Y")
    done = fb.block("done")

    sel, direction, t, zero = fb.regs(4)
    top.read(sel)
    top.read(direction)
    top.li(zero, 0)
    top.cmplt(t, sel, zero)
    top.br(t, "done", "route")
    route = fb.block("route")
    route.br(sel, "X", "A")

    a.jmp("B")
    x.jmp("B")
    b.br(direction, "Y", "C")
    c.jmp("top")
    y.jmp("top")
    done.ret()
    return build_program(fb)


def run_paths(program, tape, depth=15):
    profiler = GeneralPathProfiler(program, depth=depth)
    run_program(program, input_tape=tape, observer=profiler)
    return profiler.finalize()


def figure1_tape(abc, aby, xbc, xby):
    """Build an input driving the Figure 1 paths the given number of times."""
    tape = []
    tape += [0, 0] * abc  # A -> B -> C
    tape += [0, 1] * aby  # A -> B -> Y
    tape += [1, 0] * xbc  # X -> B -> C
    tape += [1, 1] * xby  # X -> B -> Y
    tape += [-1, -1]
    return tape


class TestFigure1:
    """Two executions with identical edge profiles but different path
    profiles — the paper's motivating ambiguity."""

    def test_edge_profiles_identical_but_path_differs(self):
        prog = figure1_program()
        # Execution 1: f(ABC)=10, f(XBY)=5.
        bundle1 = collect_profiles(prog, input_tape=figure1_tape(10, 0, 0, 5))
        # Execution 2: f(ABC)=5, f(ABY)=5, f(XBC)=5 -- same edge counts.
        bundle2 = collect_profiles(prog, input_tape=figure1_tape(5, 5, 5, 0))

        for edge in (("A", "B"), ("X", "B"), ("B", "C"), ("B", "Y")):
            assert bundle1.edge.edge_count("main", *edge) == \
                bundle2.edge.edge_count("main", *edge)

        assert bundle1.path.freq("main", ("A", "B", "C")) == 10
        assert bundle2.path.freq("main", ("A", "B", "C")) == 5
        assert bundle1.path.freq("main", ("A", "B", "Y")) == 0
        assert bundle2.path.freq("main", ("A", "B", "Y")) == 5

    def test_path_constraint_from_paper(self):
        # f(ABC) + f(ABY) equals the A -> B edge count.
        prog = figure1_program()
        bundle = collect_profiles(prog, input_tape=figure1_tape(7, 3, 2, 1))
        path = bundle.path
        assert (
            path.freq("main", ("A", "B", "C"))
            + path.freq("main", ("A", "B", "Y"))
            == bundle.edge.edge_count("main", "A", "B")
        )


class TestMarginalization:
    """Path profiles are a superset of edge profiles (Section 2.2)."""

    def test_length2_paths_equal_edge_counts(self):
        for tape in ([10, 11, 60, -1], [10, -1], [60, 11, 10, 10, -1]):
            bundle = collect_profiles(diamond_program(), input_tape=tape)
            derived = bundle.path.to_edge_counts("main")
            recorded = bundle.edge.edges.get("main", {})
            assert derived == {k: v for k, v in recorded.items() if v}

    def test_block_counts_match(self):
        bundle = collect_profiles(
            figure3_loop_program(), input_tape=[16, 0]
        )
        for label, count in bundle.edge.blocks["main"].items():
            assert bundle.path.block_count("main", label) == count

    def test_marginalization_across_procedures(self):
        bundle = collect_profiles(call_program(), input_tape=[5])
        for proc in ("main", "square"):
            derived = bundle.path.to_edge_counts(proc)
            recorded = {
                k: v for k, v in bundle.edge.edges.get(proc, {}).items() if v
            }
            assert derived == recorded


class TestWindowing:
    def test_depth_limits_recorded_branches(self):
        prog = diamond_program()
        profile = run_paths(prog, [10] * 50 + [-1], depth=3)
        for path in profile.paths["main"]:
            branch_blocks = [
                lab for lab in path if lab in profile.branch_blocks["main"]
            ]
            assert len(branch_blocks) <= 3

    def test_paths_cross_back_edges(self):
        # A general path can span loop iterations: C..A appears.
        profile = run_paths(diamond_program(), [10, 10, 10, -1])
        assert profile.freq("main", ("C", "A")) == 3

    def test_single_block_paths_equal_block_counts(self):
        profile = run_paths(diamond_program(), [10, 11, -1])
        assert profile.block_count("main", "A") == 3
        assert profile.block_count("main", "B") == 2

    def test_windows_are_per_frame(self):
        # Recursive/zig-zag calls: callee blocks never enter caller windows.
        profile_bundle = collect_profiles(call_program(), input_tape=[4])
        for path in profile_bundle.path.paths["main"]:
            assert all(lab in ("entry", "loop", "body", "done") for lab in path)


class TestQueries:
    def test_most_likely_path_successor_prefers_frequent(self):
        # 3 of 4 iterations go B (w=10), 1 goes X (w=60).
        tape = [10, 10, 10, 60] * 5 + [-1]
        profile = run_paths(diamond_program(), tape)
        best = profile.most_likely_path_successor(
            "main", ("A", "A_test"), ("B", "X")
        )
        assert best is not None and best[0] == "B"

    def test_most_likely_path_successor_none_when_unseen(self):
        profile = run_paths(diamond_program(), [-1])
        assert (
            profile.most_likely_path_successor("main", ("B",), ("C", "Y"))
            is None
        )

    def test_correlation_visible_through_paths(self):
        # Strict alternation B,X,B,X...: after (X,..,A_test) the successor is
        # B; after (B,..,A_test) it is X.  Edge profile sees 50/50.
        tape = [10, 60] * 10 + [-1]
        profile = run_paths(diamond_program(), tape)
        after_b = profile.most_likely_path_successor(
            "main", ("B", "C", "A", "A_test"), ("B", "X")
        )
        after_x = profile.most_likely_path_successor(
            "main", ("X", "A", "A_test"), ("B", "X")
        )
        assert after_b is not None and after_b[0] == "X"
        assert after_x is not None and after_x[0] == "B"

    def test_known_suffix_falls_back(self):
        profile = run_paths(diamond_program(), [10, -1])
        # A trace never executed in this order falls back to its last block.
        suffix = profile.known_suffix("main", ("Y", "C", "B"))
        assert suffix == ("B",)

    def test_completion_ratio(self):
        tape = [10, 10, 10, 60] * 25 + [-1]
        profile = run_paths(diamond_program(), tape)
        ratio = profile.completion_ratio("main", ("A_test", "B", "C"))
        assert 0.7 <= ratio <= 0.8  # ~75% of A_test entries complete via B,C

    def test_completion_ratio_of_unseen_head(self):
        profile = run_paths(diamond_program(), [-1])
        assert profile.completion_ratio("main", ("B", "C")) == 0.0
        assert profile.completion_ratio("main", ()) == 0.0
