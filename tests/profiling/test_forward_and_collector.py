"""Tests for forward-path profiling and the profile collector."""

from repro.interp import run_program
from repro.profiling import (
    ForwardPathProfiler,
    GeneralPathProfiler,
    collect_profiles,
)

from tests.support import diamond_program, figure3_loop_program


def run_forward(program, tape, depth=15):
    profiler = ForwardPathProfiler(program, depth=depth)
    run_program(program, input_tape=tape, observer=profiler)
    return profiler.finalize()


class TestForwardPaths:
    def test_no_forward_path_crosses_back_edge(self):
        profile = run_forward(diamond_program(), [10, 10, 10, -1])
        # (C, A) traverses the back edge C -> A; forward profiles cannot
        # contain it, while the general profiler records it.
        assert profile.freq("main", ("C", "A")) == 0

    def test_general_profile_does_cross(self):
        prog = diamond_program()
        profiler = GeneralPathProfiler(prog)
        run_program(prog, input_tape=[10, 10, 10, -1], observer=profiler)
        assert profiler.finalize().freq("main", ("C", "A")) == 3

    def test_within_iteration_paths_agree(self):
        # Paths inside one loop iteration are identical in both profiles.
        prog = diamond_program()
        tape = [10, 11, 60, 10, -1]
        fwd = run_forward(prog, tape)
        gen_profiler = GeneralPathProfiler(prog)
        run_program(prog, input_tape=tape, observer=gen_profiler)
        gen = gen_profiler.finalize()
        for path in (("A", "A_test", "B"), ("A_test", "B", "C"), ("A_test", "X")):
            assert fwd.freq("main", path) == gen.freq("main", path)

    def test_block_counts_unaffected_by_chopping(self):
        prog = figure3_loop_program()
        tape = [12, 0]
        fwd = run_forward(prog, tape)
        gen_profiler = GeneralPathProfiler(prog)
        run_program(prog, input_tape=tape, observer=gen_profiler)
        gen = gen_profiler.finalize()
        for label in ("A", "B", "C", "D"):
            assert fwd.block_count("main", label) == gen.block_count(
                "main", label
            )

    def test_alternation_invisible_to_forward_paths(self):
        # Figure 3 / alt pattern: the repeating body B,B,B,C spans back
        # edges; only general paths record multi-iteration sequences.
        prog = figure3_loop_program()
        tape = [16, 0]
        fwd = run_forward(prog, tape)
        gen_profiler = GeneralPathProfiler(prog)
        run_program(prog, input_tape=tape, observer=gen_profiler)
        gen = gen_profiler.finalize()
        two_iterations = ("B", "D", "A", "A_alt", "B")
        assert gen.freq("main", two_iterations) > 0
        assert fwd.freq("main", two_iterations) == 0


class TestCollector:
    def test_bundle_contains_consistent_profiles(self):
        bundle = collect_profiles(
            diamond_program(), input_tape=[10, 11, 60, -1]
        )
        assert bundle.edge.block_count("main", "A") == 4
        assert bundle.path.block_count("main", "A") == 4
        assert bundle.result.output == [100, 300, 200]
        assert bundle.forward is None

    def test_forward_included_on_request(self):
        bundle = collect_profiles(
            diamond_program(),
            input_tape=[10, -1],
            include_forward=True,
        )
        assert bundle.forward is not None
        assert bundle.forward.block_count("main", "A") == 2

    def test_depth_respected(self):
        bundle = collect_profiles(
            diamond_program(), input_tape=[10] * 20 + [-1], depth=2
        )
        for path in bundle.path.paths["main"]:
            branchy = bundle.path.branch_blocks["main"]
            assert sum(1 for lab in path if lab in branchy) <= 2

    def test_rejects_bad_depth(self):
        import pytest

        with pytest.raises(ValueError):
            GeneralPathProfiler(diamond_program(), depth=0)
