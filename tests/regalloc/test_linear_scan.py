"""Tests for linear-scan register allocation."""

import pytest

from repro.frontend import compile_source
from repro.interp import run_program
from repro.ir import Opcode
from repro.pipeline import run_scheme
from repro.regalloc import SCRATCH_COUNT, AllocationError
from repro.scheduling import MachineModel

from tests.support import call_program, diamond_program

PRESSURE_SRC_TEMPLATE = """
func main() {{
    {decls}
    var total = 0;
    var w = read();
    while (w >= 0) {{
        {uses}
        w = read();
    }}
    print(total);
}}
"""


def pressure_source(count):
    """A function with ``count`` live-across-loop variables."""
    decls = "\n    ".join(f"var x{i} = {i} * 3;" for i in range(count))
    uses = "total = total"
    uses += "".join(f" + x{i}" for i in range(count)) + " + w;"
    return PRESSURE_SRC_TEMPLATE.format(decls=decls, uses=uses)


class TestAllocationBasics:
    def test_all_registers_within_file(self):
        out = run_scheme(
            diamond_program(), "M4", [10, 10, 60] * 4 + [-1], [10, 11, -1]
        )
        limit = out.compiled.machine.num_registers
        for cproc in out.compiled.procedures.values():
            for sched in cproc.schedules.values():
                for op in sched.ops:
                    if op.instr.dest is not None:
                        assert 0 <= op.instr.dest < limit
                    for src in op.instr.srcs:
                        assert 0 <= src < limit

    def test_stats_reported(self):
        out = run_scheme(diamond_program(), "M4", [10, -1], [10, -1])
        stats = out.compiled.allocation_stats["main"]
        assert stats.temps_assigned > 0
        assert stats.arch_spilled == 0

    def test_arch_registers_assigned_for_cross_superblock_values(self):
        out = run_scheme(call_program(), "M4", [5], [3])
        stats = out.compiled.allocation_stats["square"]
        # square's parameter is an architectural register.
        assert stats.arch_assigned > 0

    def test_params_remapped_consistently(self):
        out = run_scheme(call_program(), "M4", [5], [3])
        square = out.compiled.procedures["square"]
        assert len(square.params) == 1
        assert 0 <= square.params[0] < out.compiled.machine.num_registers

    def test_no_allocation_mode_keeps_virtuals(self):
        out = run_scheme(
            diamond_program(), "M4", [10, -1], [10, -1], allocate=False
        )
        assert out.compiled.allocation_stats == {}


class TestPressureAndSpilling:
    def test_small_register_file_forces_spills_but_stays_correct(self):
        source = pressure_source(30)
        program = compile_source(source)
        tiny = MachineModel(num_registers=24)
        tape = [5, 9, 2, -1]
        out = run_scheme(
            program, "M4", [1, 2, 3, -1], tape, machine=tiny
        )
        reference = run_program(compile_source(source), input_tape=tape)
        assert out.result.output == reference.output
        stats = out.compiled.allocation_stats["main"]
        assert stats.arch_spilled > 0 or stats.temps_spilled > 0
        assert stats.spill_instructions > 0

    def test_spill_code_uses_spill_opcodes(self):
        source = pressure_source(30)
        program = compile_source(source)
        tiny = MachineModel(num_registers=24)
        out = run_scheme(program, "M4", [1, -1], [2, -1], machine=tiny)
        ops = [
            op.instr.opcode
            for cproc in out.compiled.procedures.values()
            for sched in cproc.schedules.values()
            for op in sched.ops
        ]
        assert Opcode.SPILL_LD in ops
        assert Opcode.SPILL_ST in ops

    def test_spilled_values_survive_recursion(self):
        # Spill slots are per-activation: recursion must not clobber them.
        source = (
            "func fib(n) { if (n < 2) { return n; } "
            + "var a = fib(n - 1); var b = fib(n - 2); "
            + "".join(f"var t{i} = n + {i};" for i in range(20))
            + "var noise = 0;"
            + "noise = noise"
            + "".join(f" + t{i}" for i in range(20))
            + "; return a + b + noise - noise; }\n"
            + "func main() { print(fib(8)); }"
        )
        program = compile_source(source)
        tiny = MachineModel(num_registers=24)
        out = run_scheme(program, "M4", [], [], machine=tiny)
        assert out.result.output == [21]

    def test_ample_registers_no_spills(self):
        out = run_scheme(diamond_program(), "P4", [10, 10, -1], [10, -1])
        stats = out.compiled.allocation_stats["main"]
        assert stats.arch_spilled == 0

    def test_too_many_params_rejected(self):
        params = ", ".join(f"p{i}" for i in range(40))
        source = f"func f({params}) {{ return p0; }} func main() {{ }}"
        program = compile_source(source)
        tiny = MachineModel(num_registers=16)
        with pytest.raises(AllocationError):
            run_scheme(program, "M4", [], [], machine=tiny)
