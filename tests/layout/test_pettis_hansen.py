"""Tests for call-graph-driven code placement."""

from repro.layout import (
    INSTRUCTION_BYTES,
    call_graph_weights,
    layout_program,
    order_procedures,
)
from repro.pipeline import run_scheme

from tests.support import call_program, diamond_program


class TestOrdering:
    def test_entry_chain_first(self):
        order = order_procedures(
            ["c", "a", "main"], {("main", "a"): 5, ("a", "c"): 1}, "main"
        )
        assert order[0] == "main"

    def test_heavy_edges_merge_first(self):
        order = order_procedures(
            ["main", "hot", "cold"],
            {("main", "hot"): 100, ("main", "cold"): 1},
            "main",
        )
        assert order.index("hot") == order.index("main") + 1

    def test_all_procedures_placed_once(self):
        names = ["main", "a", "b", "c"]
        order = order_procedures(names, {}, "main")
        assert sorted(order) == sorted(names)

    def test_self_edges_ignored(self):
        order = order_procedures(["main"], {("main", "main"): 9}, "main")
        assert order == ["main"]

    def test_entry_mid_chain_rotates_instead_of_splicing(self):
        # Merging order by weight builds the chain [a, b, main, z]: entry
        # lands mid-chain.  Splicing it out to the front would keep only
        # one of the three affinity adjacencies ((a,b)); rotation keeps
        # (a,b) and (main,z) and breaks only the (b,main) adjacency at the
        # cut point.
        order = order_procedures(
            ["main", "a", "b", "z"],
            {("a", "b"): 100, ("b", "main"): 50, ("main", "z"): 30},
            "main",
        )
        assert order == ["main", "z", "a", "b"]
        assert abs(order.index("a") - order.index("b")) == 1
        assert abs(order.index("main") - order.index("z")) == 1


class TestLayout:
    def test_addresses_disjoint_and_packed(self):
        out = run_scheme(call_program(), "M4", [6], [3])
        layout = out.layout
        spans = []
        for (proc, head), base in layout.base.items():
            size = len(out.compiled.procedures[proc].schedules[head].ops)
            spans.append((base, base + size * INSTRUCTION_BYTES))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert spans[0][0] == 0
        assert spans[-1][1] == layout.code_bytes

    def test_entry_superblock_leads_its_procedure(self):
        out = run_scheme(diamond_program(), "M4", [10, 10, -1], [10, -1])
        cproc = out.compiled.procedures["main"]
        entry_base = out.layout.address_of("main", cproc.entry_head)
        other = [
            out.layout.address_of("main", head)
            for head in cproc.schedules
        ]
        assert entry_base == min(other)

    def test_call_weights_use_profile(self):
        out = run_scheme(call_program(), "M4", [6], [3])
        weights = call_graph_weights(out.compiled, out.profiles.edge)
        assert weights[("main", "square")] >= 6

    def test_layout_without_profile(self):
        out = run_scheme(call_program(), "M4", [4], [2])
        layout = layout_program(out.compiled, profile=None)
        assert layout.code_bytes > 0
        assert ("main", out.compiled.procedures["main"].entry_head) in layout.base
