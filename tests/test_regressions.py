"""Regression tests for bugs found during development.

Each test pins the exact failure mode so it cannot silently return:

1. *allocator interval clobber* — temp live intervals computed over the
   preschedule order let two overlapping (in program order) values share a
   register; the postschedule then read a clobbered value.
2. *move renaming lost* — the materializing-move special case mapped the
   architectural register to itself, so consumers waited on the move and
   every MiniC assignment serialized the schedule.
3. *LIFO register reuse* — the free list handed back the most recently
   freed register, recreating the anti-dependences renaming had removed.
4. *unroll copy drift* — the classical unroller copied the loop body after
   retargeting its back edge, disconnecting later copies.
5. *self-referential path-enlargement labels* — stopped growth left arms
   pointing into superblock middles; the fixup pass must redirect them to
   an equivalent head (closing unrolled loops) instead of cascading chains.
"""

from repro.frontend import compile_source
from repro.interp import run_program
from repro.pipeline import run_scheme

WC3_SRC = """
func main() {
    var count = 0;
    var length = 0;
    var c = read();
    while (c >= 0) {
        if (c == 32 || c == 10) {
            if (length > 0 && length % 3 == 0) {
                count = count + 1;
            }
            length = 0;
        } else {
            length = length + 1;
        }
        c = read();
    }
    print(count);
}
"""


def text(words):
    tape = []
    for word in words:
        tape.extend(ord(ch) for ch in word)
        tape.append(32)
    tape.append(-1)
    return tape


class TestAllocatorIntervalClobber:
    """Bug 1: VN + allocation + postschedule lost a zero constant."""

    def test_wc3_all_schemes(self):
        program = compile_source(WC3_SRC)
        train = text(["alpha", "bee", "gamma", "de", "epsilon", "zig"] * 6)
        test = text(["one", "three", "fifteen", "x", "abcdef", "ninety"])
        reference = run_program(compile_source(WC3_SRC), input_tape=test)
        for scheme in ("BB", "M4", "M16", "P4", "P4e"):
            out = run_scheme(program, scheme, train, test)
            assert out.result.output == reference.output, scheme

    def test_minimal_clobber_case(self):
        program = compile_source(WC3_SRC)
        train = text(["ab", "cde"] * 3)
        test = [97, 98, 99, 32, -1]
        out = run_scheme(program, "M4", train, test)
        assert out.result.output == [1]


class TestMoveRenamingAndReuse:
    """Bugs 2+3: assignments must not serialize superblock schedules."""

    LOOP_SRC = """
    func main() {
        var acc = 0;
        var n = read();
        for (var i = 0; i < n; i = i + 1) {
            if (i % 4 != 3) { acc = acc + i; } else { acc = acc - i; }
        }
        print(acc);
    }
    """

    def test_unrolled_loop_overlaps_iterations(self):
        # With move renaming + round-robin reuse, the unrolled loop must
        # run well under the ~10 cycles/iteration of the serialized
        # schedule this regression originally produced.
        program = compile_source(self.LOOP_SRC)
        iterations = 400
        out = run_scheme(program, "M4", [400], [iterations])
        cycles_per_iteration = out.result.cycles / iterations
        assert cycles_per_iteration < 6.0, cycles_per_iteration

    def test_superblock_schemes_still_beat_bb_substantially(self):
        program = compile_source(self.LOOP_SRC)
        bb = run_scheme(program, "BB", [400], [400])
        m4 = run_scheme(program, "M4", [400], [400])
        assert m4.result.cycles * 2 < bb.result.cycles


class TestUnrollCopyDrift:
    """Bug 4: unrolled bodies must chain head -> copy1 -> ... -> head."""

    def test_m4_formation_connected(self):
        from repro.formation import form_superblocks, scheme, verify_formation
        from repro.profiling import collect_profiles
        from tests.support import figure3_loop_program

        program = figure3_loop_program()
        bundle = collect_profiles(program, input_tape=[24, 0])
        result = form_superblocks(
            program,
            scheme("M16"),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        assert verify_formation(result) == []


class TestEquivalentHeadFixup:
    """Bug 5: path-unrolled loops close back onto a head, not onto an
    ever-growing cascade of suffix chains."""

    def test_p4_loop_tail_targets_a_head(self):
        from repro.formation import form_superblocks, scheme
        from repro.profiling import collect_profiles
        from tests.support import figure3_loop_program

        program = figure3_loop_program()
        bundle = collect_profiles(program, input_tape=[24, 0])
        result = form_superblocks(
            program,
            scheme("P4"),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        proc = result.program.procedure("main")
        heads = {sb.head for sb in result.superblocks["main"]}
        loops = [sb for sb in result.superblocks["main"] if sb.is_loop]
        assert loops
        for sb in loops:
            for target in proc.block(sb.labels[-1]).successors():
                assert target in heads

    def test_code_growth_bounded(self):
        from repro.formation import form_superblocks, scheme
        from repro.profiling import collect_profiles
        from tests.support import figure3_loop_program

        program = figure3_loop_program()
        bundle = collect_profiles(program, input_tape=[24, 1])
        result = form_superblocks(
            program,
            scheme("P4"),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        # The cascade bug blew this up ~20x; equivalent-head repair keeps
        # expansion within the enlargement budget.
        assert result.program.instruction_count() < 1200
