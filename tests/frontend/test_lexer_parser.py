"""Tests for the MiniC lexer and parser."""

import pytest

from repro.frontend import MiniCError, TokenKind, parse, tokenize
from repro.frontend import ast_nodes as ast


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("func main() { return 42; }")
        kinds = [t.kind for t in toks]
        assert kinds[-1] is TokenKind.EOF
        texts = [t.text for t in toks[:-1]]
        assert texts == ["func", "main", "(", ")", "{", "return", "42", ";", "}"]

    def test_keywords_vs_identifiers(self):
        toks = tokenize("while whilex")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT

    def test_maximal_munch(self):
        toks = tokenize("a <= b << c == d")
        ops = [t.text for t in toks if t.kind is TokenKind.PUNCT]
        assert ops == ["<=", "<<", "=="]

    def test_line_comments(self):
        toks = tokenize("1 // comment\n2")
        assert [t.text for t in toks[:-1]] == ["1", "2"]

    def test_block_comments(self):
        toks = tokenize("1 /* multi\nline */ 2")
        assert [t.text for t in toks[:-1]] == ["1", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(MiniCError):
            tokenize("/* never closed")

    def test_unexpected_character(self):
        with pytest.raises(MiniCError):
            tokenize("a $ b")

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestParser:
    def test_function_definition(self):
        mod = parse("func add(a, b) { return a + b; }")
        assert len(mod.functions) == 1
        func = mod.functions[0]
        assert func.name == "add"
        assert func.params == ["a", "b"]
        assert isinstance(func.body[0], ast.Return)

    def test_precedence(self):
        mod = parse("func main() { var x = 1 + 2 * 3; }")
        init = mod.functions[0].body[0].init
        assert isinstance(init, ast.Binary) and init.op == "+"
        assert isinstance(init.rhs, ast.Binary) and init.rhs.op == "*"

    def test_comparison_binds_looser_than_arithmetic(self):
        mod = parse("func main() { var x = 1 + 2 < 3; }")
        init = mod.functions[0].body[0].init
        assert init.op == "<"

    def test_logical_structure(self):
        mod = parse("func main() { var x = 1 && 2 || 3; }")
        init = mod.functions[0].body[0].init
        assert isinstance(init, ast.Logical) and init.op == "||"
        assert isinstance(init.lhs, ast.Logical) and init.lhs.op == "&&"

    def test_unary_chain(self):
        mod = parse("func main() { var x = !-1; }")
        init = mod.functions[0].body[0].init
        assert isinstance(init, ast.Unary) and init.op == "!"
        assert isinstance(init.operand, ast.Unary) and init.operand.op == "-"

    def test_if_else_if_chain(self):
        mod = parse(
            "func main() { if (1) { } else if (2) { } else { print(3); } }"
        )
        stmt = mod.functions[0].body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse[0], ast.If)
        assert isinstance(stmt.orelse[0].orelse[0], ast.Print)

    def test_while_and_control(self):
        mod = parse(
            "func main() { while (1) { break; continue; } }"
        )
        loop = mod.functions[0].body[0]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.body[0], ast.Break)
        assert isinstance(loop.body[1], ast.Continue)

    def test_for_parts(self):
        mod = parse("func main() { for (var i = 0; i < 9; i = i + 1) { } }")
        loop = mod.functions[0].body[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.cond, ast.Binary)
        assert isinstance(loop.step, ast.Assign)

    def test_for_with_empty_parts(self):
        mod = parse("func main() { for (;;) { break; } }")
        loop = mod.functions[0].body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_switch(self):
        mod = parse(
            """
            func main() {
                switch (read()) {
                    case 0: { print(1); }
                    case 2: { print(2); }
                    default: { print(9); }
                }
            }
            """
        )
        sw = mod.functions[0].body[0]
        assert isinstance(sw, ast.Switch)
        assert [c.value for c in sw.cases] == [0, 2]
        assert len(sw.default) == 1

    def test_switch_rejects_non_literal_case(self):
        with pytest.raises(MiniCError):
            parse("func main() { switch (1) { case x: { } } }")

    def test_switch_rejects_duplicate_default(self):
        with pytest.raises(MiniCError):
            parse(
                "func main() { switch (1) { default: { } default: { } } }"
            )

    def test_mem_access(self):
        mod = parse("func main() { mem[4] = mem[2] + 1; }")
        stmt = mod.functions[0].body[0]
        assert isinstance(stmt, ast.StoreStmt)
        assert isinstance(stmt.value.lhs, ast.Load)

    def test_call_statement_and_expression(self):
        mod = parse("func f() { } func main() { f(); var x = f(); }")
        body = mod.functions[1].body
        assert isinstance(body[0], ast.ExprStmt)
        assert isinstance(body[0].value, ast.Call)

    def test_read_expression(self):
        mod = parse("func main() { var x = read(); }")
        assert isinstance(mod.functions[0].body[0].init, ast.ReadExpr)

    def test_missing_semicolon(self):
        with pytest.raises(MiniCError):
            parse("func main() { var x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(MiniCError):
            parse("func main() { var x = 1;")

    def test_garbage_statement(self):
        with pytest.raises(MiniCError):
            parse("func main() { + ; }")
