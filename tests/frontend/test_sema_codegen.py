"""Tests for MiniC semantic checks and end-to-end compile+run behaviour."""

import pytest

from repro.frontend import MiniCError, compile_source
from repro.interp import run_program
from repro.ir import verify_program


def run_src(source, tape=()):
    program = compile_source(source)
    return run_program(program, input_tape=tape)


class TestSema:
    def test_duplicate_function(self):
        with pytest.raises(MiniCError):
            compile_source("func f() { } func f() { } func main() { }")

    def test_duplicate_param(self):
        with pytest.raises(MiniCError):
            compile_source("func f(a, a) { } func main() { }")

    def test_undeclared_variable_use(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { print(x); }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { x = 1; }")

    def test_redeclaration(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { var x = 1; var x = 2; }")

    def test_undefined_function_call(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { ghost(); }")

    def test_call_arity(self):
        with pytest.raises(MiniCError):
            compile_source("func f(a) { } func main() { f(); }")

    def test_break_outside_loop(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(MiniCError):
            compile_source("func main() { continue; }")

    def test_negative_case_label(self):
        with pytest.raises(MiniCError):
            compile_source(
                "func main() { switch (1) { case 0: { } } }".replace(
                    "case 0", "case -1"
                )
            )

    def test_duplicate_case_label(self):
        with pytest.raises(MiniCError):
            compile_source(
                "func main() { switch (1) { case 1: { } case 1: { } } }"
            )

    def test_missing_entry(self):
        with pytest.raises(MiniCError):
            compile_source("func helper() { }")


class TestCodegenExecution:
    def test_compiled_ir_is_well_formed(self):
        program = compile_source(
            """
            func main() {
                var i = 0;
                while (i < 3) { print(i); i = i + 1; }
            }
            """
        )
        assert verify_program(program) == []

    def test_arithmetic(self):
        result = run_src("func main() { print(2 + 3 * 4 - 6 / 2); }")
        assert result.output == [11]

    def test_comparisons(self):
        result = run_src(
            "func main() { print(3 < 5); print(5 <= 4); print(2 == 2); }"
        )
        assert result.output == [1, 0, 1]

    def test_unary(self):
        result = run_src("func main() { print(-5); print(!0); print(!7); }")
        assert result.output == [-5, 1, 0]

    def test_bitwise_and_shift(self):
        result = run_src(
            "func main() { print(6 & 3); print(6 | 3); print(6 ^ 3);"
            " print(1 << 4); print(32 >> 2); }"
        )
        assert result.output == [2, 7, 5, 16, 8]

    def test_if_else(self):
        src = """
        func classify(x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else { return 3; }
        }
        func main() { print(classify(5)); print(classify(50)); print(classify(500)); }
        """
        assert run_src(src).output == [1, 2, 3]

    def test_while_loop(self):
        src = """
        func main() {
            var total = 0;
            var i = 1;
            while (i <= 10) { total = total + i; i = i + 1; }
            print(total);
        }
        """
        assert run_src(src).output == [55]

    def test_for_loop_with_break_continue(self):
        src = """
        func main() {
            var total = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i == 7) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            print(total);
        }
        """
        assert run_src(src).output == [1 + 3 + 5]

    def test_short_circuit_and(self):
        # RHS read() must not execute when LHS is false.
        src = """
        func main() {
            var x = 0 && read();
            print(x);
            print(read());
        }
        """
        assert run_src(src, tape=[42]).output == [0, 42]

    def test_short_circuit_or(self):
        src = """
        func main() {
            var x = 1 || read();
            print(x);
            print(read());
        }
        """
        assert run_src(src, tape=[42]).output == [1, 42]

    def test_logical_normalizes_to_bool(self):
        assert run_src("func main() { print(7 && 9); }").output == [1]
        assert run_src("func main() { print(0 || 5); }").output == [1]

    def test_switch_dispatch(self):
        src = """
        func main() {
            var v = read();
            while (v >= 0) {
                switch (v) {
                    case 0: { print(100); }
                    case 1: { print(101); }
                    case 3: { print(103); }
                    default: { print(999); }
                }
                v = read();
            }
        }
        """
        result = run_src(src, tape=[0, 1, 2, 3, 7, -1])
        assert result.output == [100, 101, 999, 103, 999]

    def test_switch_no_fallthrough(self):
        src = """
        func main() {
            switch (0) {
                case 0: { print(1); }
                case 1: { print(2); }
            }
            print(3);
        }
        """
        assert run_src(src).output == [1, 3]

    def test_mem_operations(self):
        src = """
        func main() {
            var i = 0;
            while (i < 5) { mem[100 + i] = i * i; i = i + 1; }
            print(mem[103]);
            print(mem[999]);
        }
        """
        assert run_src(src).output == [9, 0]

    def test_recursion(self):
        src = """
        func fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        func main() { print(fact(6)); }
        """
        assert run_src(src).output == [720]

    def test_mutual_recursion(self):
        src = """
        func is_even(n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        func is_odd(n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        func main() { print(is_even(10)); print(is_even(7)); }
        """
        assert run_src(src).output == [1, 0]

    def test_implicit_return_zero(self):
        src = "func f() { } func main() { print(f()); }"
        assert run_src(src).output == [0]

    def test_read_eof(self):
        src = """
        func main() {
            var total = 0;
            var w = read();
            while (w >= 0) { total = total + w; w = read(); }
            print(total);
        }
        """
        assert run_src(src, tape=[3, 4, 5]).output == [12]

    def test_unreachable_code_after_return_is_dropped(self):
        src = "func main() { return 1; print(2); }"
        result = run_src(src)
        assert result.output == []
        assert result.return_value == 1

    def test_dead_loop_after_branchy_returns(self):
        src = """
        func main() {
            var x = read();
            if (x) { return 1; } else { return 2; }
        }
        """
        assert run_src(src, tape=[0]).return_value == 2
