"""Deep nesting must not blow the Python call stack.

Fuzzed programs routinely nest far deeper than hand-written code, so the
parser, semantic checker, and code generator all run their tree walks on
an explicit heap stack (see ``repro.frontend.trampoline``).  These tests
pin that at depths well past CPython's default recursion limit.
"""

import sys

from repro.analysis.dominators import DominatorTree, immediate_dominators
from repro.frontend import compile_source
from repro.interp.interpreter import run_program

DEPTH = 4000


def _assert_deep(depth: int) -> None:
    assert depth > sys.getrecursionlimit() * 2


class TestDeepExpressions:
    def test_nested_parentheses(self):
        _assert_deep(DEPTH)
        expr = "(" * DEPTH + "1" + ")" * DEPTH
        source = f"func main() {{\n    print({expr});\n    return 0;\n}}\n"
        program = compile_source(source)
        result = run_program(program, input_tape=[])
        assert result.output == [1]

    def test_left_deep_binary_chain(self):
        _assert_deep(DEPTH)
        expr = " + ".join(["1"] * DEPTH)
        source = f"func main() {{\n    print({expr});\n    return 0;\n}}\n"
        result = run_program(compile_source(source), input_tape=[])
        assert result.output == [DEPTH]

    def test_deep_unary_chain(self):
        _assert_deep(DEPTH)
        expr = "-" * DEPTH + "1"
        source = f"func main() {{\n    print({expr});\n    return 0;\n}}\n"
        result = run_program(compile_source(source), input_tape=[])
        assert result.output == [1 if DEPTH % 2 == 0 else -1]

    def test_deep_logical_chain(self):
        _assert_deep(DEPTH)
        expr = " && ".join(["1"] * DEPTH)
        source = f"func main() {{\n    print({expr});\n    return 0;\n}}\n"
        program = compile_source(source)
        result = run_program(program, input_tape=[])
        assert result.output == [1]


class TestDeepStatements:
    def _nested_ifs(self, depth: int) -> str:
        lines = ["func main() {", "    var x = 0;"]
        for level in range(depth):
            lines.append("    " * 0 + "if (x < %d) {" % (depth + 1))
        lines.append("x = x + 1;")
        for _ in range(depth):
            lines.append("}")
        lines.append("    print(x);")
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def test_nested_ifs_compile_and_run(self):
        _assert_deep(DEPTH)
        program = compile_source(self._nested_ifs(DEPTH))
        result = run_program(program, input_tape=[])
        assert result.output == [1]

    def test_dominators_on_deep_cfg(self):
        # Every nested if contributes blocks: the dominator computation
        # and tree construction must both handle long chains iteratively.
        depth = 2500
        _assert_deep(depth)
        program = compile_source(self._nested_ifs(depth))
        proc = program.procedure("main")
        idom = immediate_dominators(proc)
        assert idom[proc.entry_label] is None
        assert len(idom) >= depth
        tree = DominatorTree(proc)
        # The entry dominates everything in a single-function CFG.
        assert all(
            tree.dominates(proc.entry_label, label) for label in idom
        )
