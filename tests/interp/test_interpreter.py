"""Tests for the reference interpreter."""

import pytest

from repro.interp import (
    ExecutionObserver,
    MachineFault,
    StepLimitExceeded,
    run_program,
)
from repro.ir import FunctionBuilder, Opcode, build_program
from repro.ir import instructions as ins

from tests.support import (
    call_program,
    diamond_program,
    figure3_loop_program,
    straightline_program,
)


class TestBasics:
    def test_straightline_sum(self):
        result = run_program(straightline_program((1, 2, 3, 4)))
        assert result.output == [10]
        assert result.return_value == 10

    def test_instruction_count_positive(self):
        result = run_program(straightline_program())
        assert result.instructions == 1 + 3 * 2 + 2  # li acc, 3x(li+add), print, ret

    def test_branch_count_zero_for_straightline(self):
        result = run_program(straightline_program())
        assert result.branches == 0

    def test_read_past_end_yields_minus_one(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        r = fb.reg()
        b.read(r)
        b.print_(r)
        b.read(r)
        b.print_(r)
        b.ret()
        result = run_program(build_program(fb), input_tape=[5])
        assert result.output == [5, -1]


class TestControlFlow:
    def test_diamond_tags(self):
        # 10 -> B (even) -> C; 11 -> B (odd) -> Y; 60 -> X.
        result = run_program(diamond_program(), input_tape=[10, 11, 60, -1])
        assert result.output == [100, 300, 200]

    def test_diamond_branch_count(self):
        result = run_program(diamond_program(), input_tape=[10, -1])
        # per word: eof-check + A_test + B; final word: eof-check only.
        assert result.branches == 4

    def test_figure3_alternating(self):
        # mode 0: three +1 then one +10 per group of 4.
        result = run_program(figure3_loop_program(), input_tape=[8, 0])
        assert result.output == [6 * 1 + 2 * 10]

    def test_figure3_phased(self):
        # mode 1: first 2n/3 iterations +1, rest +10.
        result = run_program(figure3_loop_program(), input_tape=[9, 1])
        assert result.output == [6 * 1 + 3 * 10]

    def test_mbr_dispatch(self):
        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        sel = fb.reg()
        entry.read(sel)
        entry.mbr(sel, ["case0", "case1", "default"])
        for name, tag in (("case0", 100), ("case1", 101), ("default", 999)):
            blk = fb.block(name)
            t = fb.reg()
            blk.li(t, tag)
            blk.print_(t)
            blk.ret()
        prog = build_program(fb)
        assert run_program(prog, input_tape=[0]).output == [100]
        assert run_program(prog, input_tape=[1]).output == [101]
        assert run_program(prog, input_tape=[7]).output == [999]
        assert run_program(prog, input_tape=[-3]).output == [999]


class TestCalls:
    def test_square_loop(self):
        result = run_program(call_program(), input_tape=[4])
        assert result.output == [0, 1, 4, 9]
        assert result.calls == 4

    def test_recursion(self):
        fib = FunctionBuilder("fib", num_params=1)
        entry = fib.block("entry")
        rec = fib.block("rec")
        base = fib.block("base")
        (n,) = fib.params
        t = fib.reg()
        two = fib.reg()
        one = fib.reg()
        a = fib.reg()
        b = fib.reg()
        r = fib.reg()
        entry.li(two, 2)
        entry.cmplt(t, n, two)
        entry.br(t, "base", "rec")
        base.ret(n)
        rec.li(one, 1)
        rec.sub(a, n, one)
        rec.call("fib", [a], dest=a)
        rec.li(two, 2)
        rec.sub(b, n, two)
        rec.call("fib", [b], dest=b)
        rec.add(r, a, b)
        rec.ret(r)

        main = FunctionBuilder("main")
        mb = main.block("entry")
        arg = main.reg()
        res = main.reg()
        mb.li(arg, 10)
        mb.call("fib", [arg], dest=res)
        mb.print_(res)
        mb.ret(res)

        result = run_program(build_program(main, fib))
        assert result.output == [55]

    def test_frames_are_isolated(self):
        # The callee writes register 0 (its param); the caller's register 0
        # must be unaffected because each activation owns its registers.
        callee = FunctionBuilder("clobber", num_params=1)
        cb = callee.block("entry")
        (p,) = callee.params
        cb.li(p, 777)
        cb.ret()

        fb = FunctionBuilder("main")
        b = fb.block("entry")
        x = fb.reg()
        assert x == 0
        b.li(x, 5)
        b.call("clobber", [x])
        b.print_(x)
        b.ret()
        result = run_program(build_program(fb, callee))
        assert result.output == [5]


class TestMemory:
    def test_store_load_roundtrip(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        addr, val, out = fb.regs(3)
        b.li(addr, 1000)
        b.li(val, 42)
        b.store(addr, val)
        b.load(out, addr)
        b.print_(out)
        b.ret()
        assert run_program(build_program(fb)).output == [42]

    def test_uninitialized_memory_reads_zero(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        addr, out = fb.regs(2)
        b.li(addr, 123456)
        b.load(out, addr)
        b.print_(out)
        b.ret()
        assert run_program(build_program(fb)).output == [0]


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),
            (Opcode.DIV, 7, -2, -3),
            (Opcode.MOD, 7, 2, 1),
            (Opcode.MOD, -7, 2, -1),
            (Opcode.SHL, 3, 2, 12),
            (Opcode.SHR, -8, 1, -4),
            (Opcode.CMPLE, 3, 3, 1),
            (Opcode.CMPNE, 3, 3, 0),
        ],
    )
    def test_binary_semantics(self, op, a, b, expected):
        fb = FunctionBuilder("main")
        blk = fb.block("entry")
        ra, rb, rc = fb.regs(3)
        blk.li(ra, a)
        blk.li(rb, b)
        blk.alu(op, rc, ra, rb)
        blk.print_(rc)
        blk.ret()
        assert run_program(build_program(fb)).output == [expected]

    def test_not_semantics(self):
        fb = FunctionBuilder("main")
        blk = fb.block("entry")
        ra, rb = fb.regs(2)
        blk.li(ra, 0)
        blk.alu(Opcode.NOT, rb, ra)
        blk.print_(rb)
        blk.ret()
        assert run_program(build_program(fb)).output == [1]

    def test_divide_by_zero_faults(self):
        fb = FunctionBuilder("main")
        blk = fb.block("entry")
        ra, rb, rc = fb.regs(3)
        blk.li(ra, 1)
        blk.li(rb, 0)
        blk.div(rc, ra, rb)
        blk.ret()
        with pytest.raises(MachineFault):
            run_program(build_program(fb))


class TestLimitsAndObservers:
    def test_step_limit(self):
        fb = FunctionBuilder("main")
        loop = fb.block("loop")
        loop.jmp("loop")
        with pytest.raises(StepLimitExceeded):
            run_program(build_program(fb), step_limit=100)

    def test_observer_sees_blocks(self):
        seen = []

        class Recorder(ExecutionObserver):
            def block_executed(self, proc_name, frame_id, label):
                seen.append((proc_name, label))

        run_program(
            diamond_program(), input_tape=[10, -1], observer=Recorder()
        )
        labels = [label for _, label in seen]
        assert labels[0] == "A"
        assert "B" in labels and "C" in labels and "done" in labels

    def test_observer_frame_ids_unique_per_call(self):
        frames = []

        class Recorder(ExecutionObserver):
            def enter_procedure(self, proc_name, frame_id):
                if proc_name == "square":
                    frames.append(frame_id)

        run_program(call_program(), input_tape=[3], observer=Recorder())
        assert len(frames) == 3
        assert len(set(frames)) == 3

    def test_per_procedure_counts(self):
        result = run_program(call_program(), input_tape=[2])
        assert result.per_procedure["square"] == 4  # 2 calls x (mul + ret)
        assert result.per_procedure["main"] > 0
