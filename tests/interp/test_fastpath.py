"""The no-observer fast path must behave exactly like the observed path."""

from repro.interp.interpreter import ExecutionObserver, Interpreter
from repro.profiling.collector import MultiObserver, fanout
from repro.workloads.suite import workload_map

TINY = 0.06


class _CountingObserver(ExecutionObserver):
    def __init__(self):
        self.enters = 0
        self.exits = 0
        self.blocks = 0

    def enter_procedure(self, proc_name, frame_id):
        self.enters += 1

    def exit_procedure(self, proc_name, frame_id):
        self.exits += 1

    def block_executed(self, proc_name, frame_id, label):
        self.blocks += 1


def _result_tuple(result):
    return (
        result.output,
        result.return_value,
        result.instructions,
        result.branches,
        dict(result.per_procedure),
    )


class TestFastPathParity:
    def test_observer_none_matches_noop_observer(self):
        for wname in ("alt", "wc", "corr"):
            workload = workload_map()[wname]
            program = workload.program()
            tape = workload.test_tape(TINY)
            fast = Interpreter(program).run(tape)
            observed = Interpreter(
                program, observer=ExecutionObserver()
            ).run(tape)
            assert _result_tuple(fast) == _result_tuple(observed)

    def test_observer_sees_every_block_and_call(self):
        workload = workload_map()["alt"]
        program = workload.program()
        counter = _CountingObserver()
        Interpreter(program, observer=counter).run(
            workload.test_tape(TINY)
        )
        assert counter.blocks > 0
        assert counter.enters == counter.exits
        assert counter.enters >= 1


class TestFanout:
    def test_single_observer_returned_unwrapped(self):
        obs = _CountingObserver()
        assert fanout([obs]) is obs

    def test_multiple_observers_wrapped(self):
        a, b = _CountingObserver(), _CountingObserver()
        combined = fanout([a, b])
        assert isinstance(combined, MultiObserver)
        combined.block_executed("main", 0, "entry")
        assert a.blocks == 1
        assert b.blocks == 1
