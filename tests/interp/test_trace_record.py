"""The trace-recording interpreter loop must behave exactly like the
no-observer fast path, and its trace must reproduce the dynamic block
stream the live observers would have seen."""

from repro.interp import run_program, run_program_traced
from repro.interp.interpreter import Interpreter
from repro.profiling.edge_profile import EdgeProfiler
from repro.workloads.suite import workload_map

TINY = 0.06


def _result_tuple(result):
    return (
        result.output,
        result.return_value,
        result.instructions,
        result.branches,
        result.blocks,
        result.calls,
        dict(result.per_procedure),
    )


class TestRunTraced:
    def test_result_matches_untraced_run(self):
        for wname in ("alt", "wc", "corr", "eqn"):
            workload = workload_map()[wname]
            program = workload.program()
            tape = workload.train_tape(TINY)
            plain = run_program(program, input_tape=tape)
            traced_result, trace = run_program_traced(program, input_tape=tape)
            assert _result_tuple(traced_result) == _result_tuple(plain)
            assert trace.num_blocks == plain.blocks

    def test_trace_shape(self):
        workload = workload_map()["corr"]
        program = workload.program()
        result, trace = run_program_traced(
            program, input_tape=workload.train_tape(TINY)
        )
        assert trace.num_frames == result.calls + 1  # calls plus main
        assert trace.nbytes() > 0
        for frame_id in range(trace.num_frames):
            labels = trace.frame_labels(frame_id)
            assert labels  # every activation executes its entry block
            proc = trace.proc_names[trace.frames[frame_id][0]]
            assert proc in program.names

    def test_replay_feeds_observers_like_live_execution(self):
        workload = workload_map()["wc"]
        program = workload.program()
        tape = workload.train_tape(TINY)

        live = EdgeProfiler()
        Interpreter(program, observer=live).run(tape)

        _, trace = run_program_traced(program, input_tape=tape)
        replayed = EdgeProfiler()
        trace.replay(replayed)

        assert replayed.finalize().edges == live.finalize().edges

    def test_step_limit_still_enforced(self):
        import pytest

        workload = workload_map()["alt"]
        program = workload.program()
        with pytest.raises(Exception):
            run_program_traced(
                program, input_tape=workload.train_tape(TINY), step_limit=3
            )
