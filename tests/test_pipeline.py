"""Tests for the top-level pipeline driver (repro.pipeline)."""

import pytest

from repro.formation import scheme
from repro.frontend import compile_source
from repro.pipeline import OutputMismatch, SchemeOutcome, run_scheme
from repro.profiling import collect_profiles
from repro.scheduling import REALISTIC_MACHINE

from tests.support import diamond_program, figure3_loop_program

WC_SRC = """
func main() {
    var words = 0;
    var chars = 0;
    var in_word = 0;
    var c = read();
    while (c >= 0) {
        chars = chars + 1;
        if (c == 32 || c == 10) {
            in_word = 0;
        } else {
            if (in_word == 0) { words = words + 1; }
            in_word = 1;
        }
        c = read();
    }
    print(words);
    print(chars);
}
"""


def text_tape(text):
    return [ord(ch) for ch in text] + [-1]


class TestRunScheme:
    def test_outcome_fields_populated(self):
        out = run_scheme(diamond_program(), "P4", [10, 10, -1], [10, -1])
        assert isinstance(out, SchemeOutcome)
        assert out.scheme == "P4"
        assert out.reference is not None
        assert out.formation.scheme == "P4"
        assert out.layout.code_bytes > 0
        assert out.cached_result is None

    def test_icache_results_on_request(self):
        out = run_scheme(
            diamond_program(), "M4", [10, 10, -1], [10, -1], with_icache=True
        )
        assert out.cached_result is not None
        assert out.cached_result.icache_accesses > 0

    def test_profiles_reusable_across_schemes(self):
        program = diamond_program()
        bundle = collect_profiles(program, input_tape=[10, 10, 60, -1])
        a = run_scheme(
            program, "M4", [], [10, -1], profiles=bundle
        )
        b = run_scheme(
            program, "P4", [], [10, -1], profiles=bundle
        )
        assert a.profiles is bundle and b.profiles is bundle

    def test_custom_config_overrides_name(self):
        config = scheme("P4", max_instructions=32)
        out = run_scheme(
            diamond_program(),
            "P4",
            [10, 10, -1],
            [10, -1],
            config=config,
        )
        assert out.scheme == "P4"

    def test_check_output_can_be_disabled(self):
        out = run_scheme(
            diamond_program(),
            "BB",
            [10, -1],
            [10, -1],
            check_output=False,
        )
        assert out.reference is None

    def test_realistic_machine_pipeline(self):
        out = run_scheme(
            figure3_loop_program(),
            "P4",
            [24, 0],
            [16, 0],
            machine=REALISTIC_MACHINE,
        )
        assert out.result.cycles > 0


class TestWordCount:
    """The paper's wc benchmark shape: train on one text, test another."""

    @pytest.mark.parametrize("name", ["BB", "M4", "M16", "P4", "P4e"])
    def test_wc_counts_correctly(self, name):
        program = compile_source(WC_SRC)
        train = text_tape("the quick brown fox\njumps over the lazy dog\n")
        test = text_tape("path profiles  beat edge profiles\n")
        out = run_scheme(program, name, train, test)
        words = 5
        chars = len("path profiles  beat edge profiles\n")
        assert out.result.output == [words, chars]

    def test_path_beats_bb_on_wc(self):
        program = compile_source(WC_SRC)
        text = "word " * 60 + "\n"
        train = text_tape(text)
        test = text_tape("another set of words " * 40)
        bb = run_scheme(program, "BB", train, test)
        p4 = run_scheme(program, "P4", train, test)
        assert p4.result.cycles < bb.result.cycles
