"""Tests for the direct-mapped instruction cache model."""

import pytest

from repro.simulate import ICache, ICacheConfig


class TestGeometry:
    def test_default_is_papers_cache(self):
        cache = ICache()
        assert cache.config.size_bytes == 32 * 1024
        assert cache.config.line_bytes == 32
        assert cache.config.miss_penalty == 6
        assert cache.config.num_lines == 1024

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="positive multiple"):
            ICache(ICacheConfig(size_bytes=100, line_bytes=32))

    def test_none_config_uses_default(self):
        assert ICache(None).config == ICacheConfig()

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            ICache(ICacheConfig(size_bytes=1024, line_bytes=24))

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            ICache(ICacheConfig(size_bytes=1024, line_bytes=0))
        with pytest.raises(ValueError, match="positive multiple"):
            ICache(ICacheConfig(size_bytes=0, line_bytes=32))
        with pytest.raises(ValueError, match="positive multiple"):
            ICache(ICacheConfig(size_bytes=-1024, line_bytes=32))

    def test_non_pow2_line_count_rejected(self):
        # 96/32 = 3 lines: the modulo indexing needs a power of two.
        with pytest.raises(ValueError, match="number of lines"):
            ICache(ICacheConfig(size_bytes=96, line_bytes=32))


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = ICache()
        assert cache.access(0) is True
        assert cache.access(4) is False  # same 32-byte line
        assert cache.access(28) is False
        assert cache.access(32) is True  # next line

    def test_conflict_eviction(self):
        cache = ICache()
        size = cache.config.size_bytes
        assert cache.access(0) is True
        assert cache.access(size) is True  # same index, different tag
        assert cache.access(0) is True  # evicted

    def test_distinct_indices_coexist(self):
        cache = ICache()
        assert cache.access(0) is True
        assert cache.access(32) is True
        assert cache.access(0) is False
        assert cache.access(32) is False

    def test_miss_rate(self):
        cache = ICache()
        for _ in range(3):
            cache.access(0)
        assert cache.accesses == 3
        assert cache.misses == 1
        assert abs(cache.miss_rate - 1 / 3) < 1e-9

    def test_reset(self):
        cache = ICache()
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0
        assert cache.access(0) is True

    def test_empty_cache_miss_rate_zero(self):
        assert ICache().miss_rate == 0.0

    def test_working_set_larger_than_cache_thrashes(self):
        cache = ICache(ICacheConfig(size_bytes=1024, line_bytes=32))
        span = 2048
        for _ in range(3):
            for addr in range(0, span, 32):
                cache.access(addr)
        assert cache.miss_rate == 1.0
