"""Tests for the VLIW simulator: semantics, cycle accounting, metrics."""

import pytest

from repro.frontend import compile_source
from repro.interp import run_program
from repro.pipeline import run_scheme
from repro.scheduling import MachineModel, REALISTIC_MACHINE
from repro.simulate import CycleLimitExceeded, ICache, simulate

from tests.support import (
    call_program,
    diamond_program,
    figure3_loop_program,
)

SCHEMES = ["BB", "M4", "M16", "P4", "P4e"]


class TestSemantics:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_output_matches_interpreter(self, name):
        # run_scheme raises OutputMismatch internally; survive = pass.
        tape = [10, 11, 60, 10, -1]
        out = run_scheme(
            diamond_program(), name, [10, 10, 60] * 5 + [-1], tape
        )
        reference = run_program(diamond_program(), input_tape=tape)
        assert out.result.output == reference.output

    @pytest.mark.parametrize("name", SCHEMES)
    def test_untrained_paths_still_correct(self, name):
        # Test input exercises paths the training run never saw.
        out = run_scheme(
            diamond_program(), name, [10, 10, -1], [60, 11, 60, -1]
        )
        reference = run_program(
            diamond_program(), input_tape=[60, 11, 60, -1]
        )
        assert out.result.output == reference.output

    @pytest.mark.parametrize("name", ["BB", "M4", "P4"])
    def test_calls_and_returns(self, name):
        out = run_scheme(call_program(), name, [6], [4])
        assert out.result.output == [0, 1, 4, 9]
        assert out.result.calls == 4

    def test_speculative_fault_suppressed(self):
        # A div guarded by a branch gets hoisted; on the guarded path its
        # divisor is 0 and the non-excepting form must return 0 silently.
        src = """
        func main() {
            var w = read();
            while (w >= 0) {
                var d = w - 5;
                if (d != 0) {
                    print(100 / d);
                } else {
                    print(0);
                }
                w = read();
            }
        }
        """
        program = compile_source(src)
        train = [1, 2, 3, 9, 8, 7, -1]  # never hits d == 0
        test = [1, 5, 9, 5, -1]  # hits d == 0
        for name in SCHEMES:
            out = run_scheme(program, name, train, test)
            reference = run_program(compile_source(src), input_tape=test)
            assert out.result.output == reference.output

    def test_realistic_machine_still_correct(self):
        tape = [10, 11, 60, -1]
        out = run_scheme(
            diamond_program(),
            "P4",
            [10, 10, 60] * 4 + [-1],
            tape,
            machine=REALISTIC_MACHINE,
        )
        reference = run_program(diamond_program(), input_tape=tape)
        assert out.result.output == reference.output


class TestCycleAccounting:
    def test_wide_machine_beats_narrow(self):
        tape = [10, 10, 10, -1]
        wide = run_scheme(diamond_program(), "M4", tape, tape)
        narrow = run_scheme(
            diamond_program(),
            "M4",
            tape,
            tape,
            machine=MachineModel(issue_width=1),
        )
        assert wide.result.cycles < narrow.result.cycles

    def test_realistic_latencies_cost_cycles(self):
        tape = [24, 0]
        fast = run_scheme(figure3_loop_program(), "M4", tape, tape)
        slow = run_scheme(
            figure3_loop_program(),
            "M4",
            tape,
            tape,
            machine=REALISTIC_MACHINE,
        )
        assert slow.result.cycles > fast.result.cycles

    def test_superblock_schemes_beat_bb(self):
        tape = [40, 0]
        bb = run_scheme(figure3_loop_program(), "BB", tape, tape)
        for name in ("M4", "P4"):
            sb = run_scheme(figure3_loop_program(), name, tape, tape)
            assert sb.result.cycles < bb.result.cycles

    def test_cycle_limit_enforced(self):
        out = run_scheme(diamond_program(), "BB", [10, -1], [10, -1])
        with pytest.raises(CycleLimitExceeded):
            simulate(
                out.compiled, input_tape=[10] * 50 + [-1], cycle_limit=10
            )

    def test_cached_run_never_faster(self):
        out = run_scheme(
            diamond_program(),
            "M16",
            [10, 10, 60] * 8 + [-1],
            [10, 11, 60] * 8 + [-1],
            with_icache=True,
        )
        assert out.cached_result.cycles >= out.result.cycles
        assert (
            out.cached_result.cycles
            == out.result.cycles + out.cached_result.miss_penalty_cycles
        )

    def test_icache_requires_layout(self):
        out = run_scheme(diamond_program(), "BB", [10, -1], [10, -1])
        from repro.simulate import SimulationError

        with pytest.raises(SimulationError):
            simulate(out.compiled, input_tape=[-1], icache=ICache())


class TestMetrics:
    def test_bb_scheme_one_block_per_entry(self):
        out = run_scheme(diamond_program(), "BB", [10, -1], [10, 11, -1])
        assert out.result.avg_blocks_per_entry == 1.0
        assert out.result.avg_superblock_size == 1.0

    def test_enlarged_superblocks_raise_blocks_per_entry(self):
        tape = [40, 0]
        bb = run_scheme(figure3_loop_program(), "BB", tape, tape)
        p4 = run_scheme(figure3_loop_program(), "P4", tape, tape)
        assert (
            p4.result.avg_blocks_per_entry > bb.result.avg_blocks_per_entry
        )

    def test_blocks_per_entry_never_exceeds_size(self):
        for name in SCHEMES:
            out = run_scheme(
                figure3_loop_program(), name, [24, 0], [32, 0]
            )
            assert (
                out.result.avg_blocks_per_entry
                <= out.result.avg_superblock_size + 1e-9
            )

    def test_wasted_operations_only_with_speculation(self):
        out = run_scheme(diamond_program(), "BB", [10, -1], [10, 11, -1])
        # BB regions have exits only at their final terminator: waste is
        # possible but bounded by same-cycle issue; just sanity-check type.
        assert out.result.wasted_operations >= 0

    def test_operation_count_at_least_reference(self):
        tape = [10, 11, -1]
        out = run_scheme(diamond_program(), "M4", [10, 10, -1], tape)
        assert out.result.operations > 0
        assert out.result.branches > 0
