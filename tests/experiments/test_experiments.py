"""Tests for the experiment drivers (small scales for speed)."""

import pytest

from repro.experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_missrates,
    format_table1,
    missrates,
    normalized_cycles,
    run_suite,
    table1,
)
from repro.experiments.render import format_bars, format_table

TINY = 0.06


class TestHarness:
    def test_run_suite_returns_all_pairs(self):
        results = run_suite(["BB", "P4"], ["alt", "wc"], scale=TINY)
        assert set(results) == {
            ("alt", "BB"),
            ("alt", "P4"),
            ("wc", "BB"),
            ("wc", "P4"),
        }

    def test_profiles_shared_within_workload(self):
        results = run_suite(["M4", "P4"], ["alt"], scale=TINY)
        assert (
            results[("alt", "M4")].profiles
            is results[("alt", "P4")].profiles
        )

    def test_normalized_cycles(self):
        results = run_suite(["M4", "P4"], ["alt"], scale=TINY)
        value = normalized_cycles(results, "alt", "P4", baseline="M4")
        assert value > 0
        assert normalized_cycles(results, "alt", "M4", baseline="M4") == 1.0


class TestTable1:
    def test_rows_for_selected_workloads(self):
        rows = table1(scale=TINY, workload_names=["alt", "wc"])
        assert [r.name for r in rows] == ["alt", "wc"]
        for row in rows:
            assert row.branches > 0
            assert row.cycles > 0
            assert row.instructions > 0
            assert row.size_bytes > 0

    def test_formatting(self):
        rows = table1(scale=TINY, workload_names=["alt"])
        text = format_table1(rows)
        assert "alt" in text and "cycles" in text


class TestFigures:
    def test_figure4_series(self):
        series = figure4(scale=TINY, workload_names=["alt", "corr"])
        assert set(series.values) == {"alt", "corr"}
        for per in series.values.values():
            assert "P4" in per and per["P4"] > 0
        text = format_figure4(series)
        assert "Figure 4" in text

    def test_figure5_series(self):
        series = figure5(scale=TINY, workload_names=["com"])
        per = series.values["com"]
        assert set(per) == {"P4", "P4e"}
        assert series.cached
        assert "Figure 5" in format_figure5(series)

    def test_figure6_series(self):
        series = figure6(scale=TINY, workload_names=["com"])
        per = series.values["com"]
        assert set(per) == {"P4e", "M16"}
        assert "Figure 6" in format_figure6(series)

    def test_figure7_data(self):
        data = figure7(scale=TINY, workload_names=["alt"])
        per = data.values["alt"]
        for scheme in ("M4", "M16", "P4e", "P4"):
            executed, size = per[scheme]
            assert 0 < executed <= size + 1e-9
        assert "Figure 7" in format_figure7(data)

    def test_missrates(self):
        rows = missrates(
            scale=TINY, workload_names=["gcc"], schemes=("M4", "P4")
        )
        assert rows[0].workload == "gcc"
        assert set(rows[0].rates) == {"M4", "P4"}
        for rate in rows[0].rates.values():
            assert 0.0 <= rate <= 1.0
        assert "miss" in format_missrates(rows)


class TestRender:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_bars_scales(self):
        text = format_bars({"w": {"P4": 0.5, "M4": 1.0}}, "chart")
        assert "chart" in text
        assert "P4" in text and "#" in text

    def test_format_bars_handles_above_one(self):
        text = format_bars({"w": {"P4": 1.5}}, "chart")
        assert "1.500" in text
