"""Tests for the secondary (ablation) experiments."""

from repro.experiments import (
    format_forward_vs_general,
    format_latency_sensitivity,
    format_static_prediction,
    forward_vs_general,
    latency_sensitivity,
    static_prediction,
)

TINY = 0.08


class TestLatencySensitivity:
    def test_rows_and_formatting(self):
        rows = latency_sensitivity(scale=TINY, workload_names=["alt"])
        assert rows[0].workload == "alt"
        assert rows[0].unit_ratio > 0
        assert rows[0].realistic_ratio > 0
        text = format_latency_sensitivity(rows)
        assert "alt" in text and "realistic" in text

    def test_path_still_wins_on_alt_under_realistic_latencies(self):
        rows = latency_sensitivity(scale=0.25, workload_names=["alt"])
        assert rows[0].realistic_ratio < 1.0


class TestForwardVsGeneral:
    def test_general_paths_beat_forward_on_alternation(self):
        rows = forward_vs_general(scale=0.25, workload_names=["alt", "corr"])
        for row in rows:
            # Forward paths cannot see across back edges: they lose the
            # multi-iteration unrolling information.
            assert row.forward_cycles >= row.general_cycles

    def test_formatting(self):
        rows = forward_vs_general(scale=TINY, workload_names=["alt"])
        text = format_forward_vs_general(rows)
        assert "forward" in text and "alt" in text


class TestStaticPrediction:
    def test_path_prediction_dominates_on_correlation(self):
        rows = static_prediction(scale=0.25, workload_names=["corr"])
        row = rows[0]
        assert row.branches > 100
        # The correlated branch is 50/50 to an edge profile but fully
        # determined given history.
        assert row.path_accuracy > 0.95
        assert row.path_accuracy > row.edge_accuracy + 0.2

    def test_path_never_much_worse_than_edge(self):
        rows = static_prediction(
            scale=TINY, workload_names=["alt", "ph", "wc"]
        )
        for row in rows:
            assert row.path_accuracy >= row.edge_accuracy - 0.05

    def test_formatting(self):
        rows = static_prediction(scale=TINY, workload_names=["ph"])
        text = format_static_prediction(rows)
        assert "ph" in text and "acc%" in text
