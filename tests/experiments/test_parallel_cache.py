"""Parity and invalidation tests for the parallel + cached suite engine.

The acceptance bar for every accelerator in :mod:`repro.experiments` is
bit-identical results: a parallel run, a cached replay, and the serial
uncached engine must agree on cycles, outputs, and the Figure 7 statistics.
"""

import pytest

from repro.experiments import (
    ExperimentCache,
    outcome_key,
    profile_key,
    reference_key,
    resolve_jobs,
    run_suite,
)
from repro.formation import scheme
from repro.scheduling.machine import PAPER_MACHINE
from repro.workloads.suite import workload_map

TINY = 0.06

SCHEMES = ["M4", "P4"]
NAMES = ["alt", "wc"]


def outcome_fingerprint(outcome):
    """Everything the tables and figures read from one outcome."""
    fp = {
        "cycles": outcome.result.cycles,
        "operations": outcome.result.operations,
        "output": outcome.result.output,
        "blocks_per_entry": outcome.result.avg_blocks_per_entry,
        "superblock_size": outcome.result.avg_superblock_size,
        "code_bytes": outcome.layout.code_bytes,
        "reference_branches": outcome.reference.branches,
    }
    if outcome.cached_result is not None:
        fp["cached_cycles"] = outcome.cached_result.cycles
        fp["miss_rate"] = outcome.cached_result.icache_miss_rate
    return fp


def suite_fingerprint(results):
    return {pair: outcome_fingerprint(o) for pair, o in results.items()}


@pytest.fixture(scope="module")
def serial_results():
    return run_suite(SCHEMES, NAMES, scale=TINY)


class TestParallelParity:
    def test_parallel_matches_serial(self, serial_results):
        parallel = run_suite(SCHEMES, NAMES, scale=TINY, jobs=2)
        assert suite_fingerprint(parallel) == suite_fingerprint(
            serial_results
        )
        assert list(parallel) == list(serial_results)

    def test_parallel_shares_profiles_within_workload(self):
        results = run_suite(SCHEMES, ["alt"], scale=TINY, jobs=2)
        assert (
            results[("alt", "M4")].profiles
            is results[("alt", "P4")].profiles
        )
        assert (
            results[("alt", "M4")].reference
            is results[("alt", "P4")].reference
        )

    def test_parallel_icache_matches_serial(self):
        serial = run_suite(["M4"], ["alt"], scale=TINY, with_icache=True)
        parallel = run_suite(
            ["M4"], ["alt"], scale=TINY, with_icache=True, jobs=2
        )
        assert suite_fingerprint(parallel) == suite_fingerprint(serial)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestCacheParity:
    def test_cached_rerun_matches_uncached(self, serial_results, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        first = run_suite(SCHEMES, NAMES, scale=TINY, cache=cache)
        assert cache.stats.stores > 0
        assert suite_fingerprint(first) == suite_fingerprint(serial_results)

        # Fresh cache object: every artifact must come back from disk.
        replay_cache = ExperimentCache(path=tmp_path)
        replay = run_suite(SCHEMES, NAMES, scale=TINY, cache=replay_cache)
        assert replay_cache.stats.hits == len(NAMES) * len(SCHEMES)
        assert replay_cache.stats.misses == 0
        assert suite_fingerprint(replay) == suite_fingerprint(serial_results)

    def test_memo_layer_hits_without_disk(self):
        cache = ExperimentCache(memory_only=True)
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache)
        assert cache.stats.hits == 0
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache)
        assert cache.stats.hits == len(SCHEMES)
        assert cache.stats.disk_hits == 0

    def test_profiles_and_reference_cached_across_runs(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        run_suite(["M4"], ["alt"], scale=TINY, cache=cache)
        # A new scheme misses on its outcome but reuses the workload's
        # training profile and testing reference from the first run.
        replay = ExperimentCache(path=tmp_path)
        results = run_suite(["P4"], ["alt"], scale=TINY, cache=replay)
        assert replay.stats.disk_hits >= 2  # profile + reference
        assert results[("alt", "P4")].result.cycles > 0

    def test_icache_entry_serves_ideal_lookup(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        icache_run = run_suite(
            ["M4"], ["alt"], scale=TINY, with_icache=True, cache=cache
        )
        replay = ExperimentCache(path=tmp_path)
        ideal = run_suite(["M4"], ["alt"], scale=TINY, cache=replay)
        outcome = ideal[("alt", "M4")]
        assert outcome.cached_result is None
        assert (
            outcome.result.cycles
            == icache_run[("alt", "M4")].result.cycles
        )
        # Served via the superset fallback: no pipeline was re-run.
        assert replay.stats.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        cache.put("ab" + "0" * 62, {"x": 1})
        entry = cache._entry_path("ab" + "0" * 62)
        entry.write_bytes(b"not a pickle")
        fresh = ExperimentCache(path=tmp_path)
        assert fresh.get("ab" + "0" * 62) is None
        assert not entry.exists()


class TestCacheInvalidation:
    def setup_method(self):
        workload = workload_map()["alt"]
        self.program = workload.program()
        self.train = workload.train_tape(TINY)
        self.test = workload.test_tape(TINY)

    def _key(self, config, train=None, test=None, with_icache=False):
        return outcome_key(
            self.program,
            config,
            train if train is not None else self.train,
            test if test is not None else self.test,
            PAPER_MACHINE,
            with_icache,
            None,
        )

    def test_scheme_config_knob_changes_key(self):
        base = self._key(scheme("M4"))
        assert self._key(scheme("M4", unroll_factor=8)) != base
        assert self._key(scheme("P4")) != base

    def test_tape_changes_key(self):
        base = self._key(scheme("M4"))
        assert self._key(scheme("M4"), test=list(self.test) + [1]) != base
        assert self._key(scheme("M4"), train=list(self.train) + [1]) != base

    def test_icache_flag_changes_key(self):
        assert self._key(scheme("M4")) != self._key(
            scheme("M4"), with_icache=True
        )

    def test_program_changes_key(self):
        other = workload_map()["wc"].program()
        changed = outcome_key(
            other,
            scheme("M4"),
            self.train,
            self.test,
            PAPER_MACHINE,
            False,
            None,
        )
        assert changed != self._key(scheme("M4"))

    def test_profile_and_reference_keys_depend_on_inputs(self):
        pk = profile_key(self.program, self.train, 15)
        assert profile_key(self.program, self.train, 10) != pk
        assert (
            profile_key(self.program, list(self.train) + [1], 15) != pk
        )
        rk = reference_key(self.program, self.test)
        assert reference_key(self.program, list(self.test) + [1]) != rk
        assert pk != rk
