"""Parity and invalidation tests for the parallel + cached suite engine.

The acceptance bar for every accelerator in :mod:`repro.experiments` is
bit-identical results: a parallel run, a cached replay, and the serial
uncached engine must agree on cycles, outputs, and the Figure 7 statistics.
"""

import pytest

from repro.experiments import (
    MIN_PARALLEL_TASKS,
    ExperimentCache,
    outcome_key,
    profile_key,
    reference_key,
    resolve_jobs,
    run_suite,
    should_parallelize,
    trace_key,
)
from repro.formation import scheme
from repro.scheduling.machine import PAPER_MACHINE
from repro.workloads.suite import workload_map

TINY = 0.06

SCHEMES = ["M4", "P4"]
NAMES = ["alt", "wc"]


def outcome_fingerprint(outcome):
    """Everything the tables and figures read from one outcome."""
    fp = {
        "cycles": outcome.result.cycles,
        "operations": outcome.result.operations,
        "output": outcome.result.output,
        "blocks_per_entry": outcome.result.avg_blocks_per_entry,
        "superblock_size": outcome.result.avg_superblock_size,
        "code_bytes": outcome.layout.code_bytes,
        "reference_branches": outcome.reference.branches,
    }
    if outcome.cached_result is not None:
        fp["cached_cycles"] = outcome.cached_result.cycles
        fp["miss_rate"] = outcome.cached_result.icache_miss_rate
    return fp


def suite_fingerprint(results):
    return {pair: outcome_fingerprint(o) for pair, o in results.items()}


@pytest.fixture(scope="module")
def serial_results():
    return run_suite(SCHEMES, NAMES, scale=TINY)


class TestParallelParity:
    # min_parallel_tasks=0 forces the worker pool even for these tiny
    # batches, which would otherwise take the serial fallback.

    def test_parallel_matches_serial(self, serial_results):
        parallel = run_suite(
            SCHEMES, NAMES, scale=TINY, jobs=2, min_parallel_tasks=0
        )
        assert suite_fingerprint(parallel) == suite_fingerprint(
            serial_results
        )
        assert list(parallel) == list(serial_results)

    def test_parallel_shares_profiles_within_workload(self):
        results = run_suite(
            SCHEMES, ["alt"], scale=TINY, jobs=2, min_parallel_tasks=0
        )
        assert (
            results[("alt", "M4")].profiles
            is results[("alt", "P4")].profiles
        )
        assert (
            results[("alt", "M4")].reference
            is results[("alt", "P4")].reference
        )

    def test_parallel_icache_matches_serial(self):
        serial = run_suite(["M4"], ["alt"], scale=TINY, with_icache=True)
        parallel = run_suite(
            ["M4"],
            ["alt"],
            scale=TINY,
            with_icache=True,
            jobs=2,
            min_parallel_tasks=0,
        )
        assert suite_fingerprint(parallel) == suite_fingerprint(serial)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestSerialFallback:
    def test_should_parallelize_threshold(self):
        assert not should_parallelize(MIN_PARALLEL_TASKS - 1, jobs=2)
        assert should_parallelize(MIN_PARALLEL_TASKS, jobs=2)
        assert not should_parallelize(1000, jobs=1)
        assert should_parallelize(1, jobs=2, min_tasks=0)
        assert not should_parallelize(5, jobs=4, min_tasks=6)

    def test_small_batch_runs_serially_and_logs(self, capsys):
        # 2 workloads x 2 schemes = 4 tasks, under the threshold: jobs=2
        # must produce the serial engine's results, with the fallback
        # note only under --verbose.
        results = run_suite(SCHEMES, NAMES, scale=TINY, jobs=2, verbose=True)
        err = capsys.readouterr().err
        assert "running serially" in err
        assert suite_fingerprint(results) == suite_fingerprint(
            run_suite(SCHEMES, NAMES, scale=TINY)
        )

    def test_fallback_is_silent_by_default(self, capsys):
        # Scripted consumers (--json pipelines) must get clean streams.
        run_suite(SCHEMES, NAMES, scale=TINY, jobs=2)
        assert "running serially" not in capsys.readouterr().err

    def test_no_fallback_log_when_serial_requested(self, capsys):
        run_suite(["M4"], ["alt"], scale=TINY, jobs=1, verbose=True)
        assert "running serially" not in capsys.readouterr().err


class TestCacheParity:
    def test_cached_rerun_matches_uncached(self, serial_results, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        first = run_suite(SCHEMES, NAMES, scale=TINY, cache=cache)
        assert cache.stats.stores > 0
        assert suite_fingerprint(first) == suite_fingerprint(serial_results)

        # Fresh cache object: every artifact must come back from disk.
        replay_cache = ExperimentCache(path=tmp_path)
        replay = run_suite(SCHEMES, NAMES, scale=TINY, cache=replay_cache)
        assert replay_cache.stats.hits == len(NAMES) * len(SCHEMES)
        assert replay_cache.stats.misses == 0
        assert suite_fingerprint(replay) == suite_fingerprint(serial_results)

    def test_memo_layer_hits_without_disk(self):
        cache = ExperimentCache(memory_only=True)
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache)
        assert cache.stats.hits == 0
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache)
        assert cache.stats.hits == len(SCHEMES)
        assert cache.stats.disk_hits == 0

    def test_profiles_and_reference_cached_across_runs(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        run_suite(["M4"], ["alt"], scale=TINY, cache=cache)
        # A new scheme misses on its outcome but reuses the workload's
        # training profile and testing reference from the first run.
        replay = ExperimentCache(path=tmp_path)
        results = run_suite(["P4"], ["alt"], scale=TINY, cache=replay)
        assert replay.stats.disk_hits >= 2  # profile + reference
        assert results[("alt", "P4")].result.cycles > 0

    def test_icache_entry_serves_ideal_lookup(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        icache_run = run_suite(
            ["M4"], ["alt"], scale=TINY, with_icache=True, cache=cache
        )
        replay = ExperimentCache(path=tmp_path)
        ideal = run_suite(["M4"], ["alt"], scale=TINY, cache=replay)
        outcome = ideal[("alt", "M4")]
        assert outcome.cached_result is None
        assert (
            outcome.result.cycles
            == icache_run[("alt", "M4")].result.cycles
        )
        # Served via the superset fallback: no pipeline was re-run.
        assert replay.stats.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ExperimentCache(path=tmp_path)
        cache.put("ab" + "0" * 62, {"x": 1})
        entry = cache._entry_path("ab" + "0" * 62)
        entry.write_bytes(b"not a pickle")
        fresh = ExperimentCache(path=tmp_path)
        assert fresh.get("ab" + "0" * 62) is None
        assert not entry.exists()


class TestTraceCache:
    def test_cached_trace_avoids_interpreter(
        self, serial_results, tmp_path, monkeypatch
    ):
        """A warm trace cache must serve a profile miss by replay alone:
        re-recording (i.e. re-executing the interpreter on the training
        input) is a bug."""
        import repro.experiments.harness as harness
        from repro.profiling import record_trace

        workload = workload_map()["alt"]
        program = workload.program()
        train = workload.train_tape(TINY)
        cache = ExperimentCache(path=tmp_path)
        cache.put(trace_key(program, train), record_trace(program, train))

        def boom(*args, **kwargs):
            raise AssertionError("training run re-executed despite trace")

        monkeypatch.setattr(harness, "record_trace", boom)
        results = run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache)
        expect = {
            pair: fp
            for pair, fp in suite_fingerprint(serial_results).items()
            if pair[0] == "alt"
        }
        assert suite_fingerprint(results) == expect

    def test_trace_derived_profiles_are_stored(self, tmp_path):
        from repro.profiling import record_trace
        from repro.profiling.path_profile import DEFAULT_DEPTH

        workload = workload_map()["alt"]
        program = workload.program()
        train = workload.train_tape(TINY)
        cache = ExperimentCache(path=tmp_path)
        cache.put(trace_key(program, train), record_trace(program, train))
        run_suite(["M4"], ["alt"], scale=TINY, cache=cache)
        fresh = ExperimentCache(path=tmp_path)
        assert fresh.get(profile_key(program, train, DEFAULT_DEPTH)) is not None

    def test_suite_records_and_stores_traces(self, tmp_path):
        workload = workload_map()["alt"]
        program = workload.program()
        train = workload.train_tape(TINY)
        cache = ExperimentCache(path=tmp_path)
        run_suite(["M4"], ["alt"], scale=TINY, cache=cache)
        fresh = ExperimentCache(path=tmp_path)
        traced = fresh.get(trace_key(program, train))
        assert traced is not None
        assert traced.trace.num_blocks > 0

    def test_trace_cache_flag_off_skips_traces(self, tmp_path):
        workload = workload_map()["alt"]
        program = workload.program()
        train = workload.train_tape(TINY)
        cache = ExperimentCache(path=tmp_path)
        run_suite(["M4"], ["alt"], scale=TINY, cache=cache, trace_cache=False)
        fresh = ExperimentCache(path=tmp_path)
        assert fresh.get(trace_key(program, train)) is None
        from repro.profiling.path_profile import DEFAULT_DEPTH

        assert fresh.get(profile_key(program, train, DEFAULT_DEPTH)) is not None


class TestMetricsParity:
    def test_parallel_counters_match_serial_exactly(self):
        from repro.metrics import MetricsSink

        serial_sink = MetricsSink()
        serial = run_suite(SCHEMES, NAMES, scale=TINY, metrics=serial_sink)
        parallel_sink = MetricsSink()
        parallel = run_suite(
            SCHEMES,
            NAMES,
            scale=TINY,
            jobs=2,
            min_parallel_tasks=0,
            metrics=parallel_sink,
        )
        assert suite_fingerprint(parallel) == suite_fingerprint(serial)

        # Counters are integer sums, so worker sinks merged by the parent
        # must total exactly what the serial engine counted — except the
        # engine-dependent families: ``suite.engine.*`` differs by design,
        # and ``jit.*`` holds wall-clock compile time plus per-process
        # code-cache traffic (each worker compiles its own copy).
        def deterministic(counters):
            return {
                k: v
                for k, v in counters.items()
                if not k.startswith(("jit.", "suite.engine."))
            }

        assert deterministic(parallel_sink.counters) == deterministic(
            serial_sink.counters
        )
        assert serial_sink.counters.get("suite.engine.serial") == 1
        assert parallel_sink.counters.get("suite.engine.parallel") == 1
        # Worker stage timings came from other processes.
        pids = {
            e["pid"]
            for e in parallel_sink.events
            if e["event"] == "stage"
        }
        assert len(pids) > 1

    def test_metrics_do_not_change_results(self, serial_results):
        from repro.metrics import MetricsSink

        instrumented = run_suite(
            SCHEMES, NAMES, scale=TINY, metrics=MetricsSink()
        )
        assert suite_fingerprint(instrumented) == suite_fingerprint(
            serial_results
        )

    def test_cache_disposition_counters(self, tmp_path):
        from repro.metrics import MetricsSink

        cache = ExperimentCache(path=tmp_path)
        cold = MetricsSink()
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache, metrics=cold)
        assert cold.counters["cache.outcome.miss"] == len(SCHEMES)

        warm = MetricsSink()
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=cache, metrics=warm)
        assert warm.counters["cache.outcome.memo"] == len(SCHEMES)
        assert "cache.outcome.miss" not in warm.counters

        disk = MetricsSink()
        fresh = ExperimentCache(path=tmp_path)
        run_suite(SCHEMES, ["alt"], scale=TINY, cache=fresh, metrics=disk)
        assert disk.counters["cache.outcome.disk"] == len(SCHEMES)
        events = [e for e in disk.events if e["event"] == "cache"]
        assert {e["disposition"] for e in events} == {"disk"}
        assert {e["workload"] for e in events} == {"alt"}


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch):
        from repro.experiments.cache import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/override")
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert str(default_cache_dir()) == "/tmp/override"

    def test_xdg_cache_home_honored(self, monkeypatch):
        from repro.experiments.cache import default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert str(default_cache_dir()) == "/tmp/xdg/repro-experiments"

    def test_relative_xdg_ignored(self, monkeypatch, tmp_path):
        # The Base Directory spec: a relative XDG_CACHE_HOME is invalid
        # and must be ignored in favour of the ~/.cache default.
        from pathlib import Path

        from repro.experiments.cache import default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "relative/cache")
        assert (
            default_cache_dir()
            == Path.home() / ".cache" / "repro-experiments"
        )

    def test_home_fallback(self, monkeypatch):
        from pathlib import Path

        from repro.experiments.cache import default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert (
            default_cache_dir()
            == Path.home() / ".cache" / "repro-experiments"
        )


class TestCacheInvalidation:
    def setup_method(self):
        workload = workload_map()["alt"]
        self.program = workload.program()
        self.train = workload.train_tape(TINY)
        self.test = workload.test_tape(TINY)

    def _key(self, config, train=None, test=None, with_icache=False):
        return outcome_key(
            self.program,
            config,
            train if train is not None else self.train,
            test if test is not None else self.test,
            PAPER_MACHINE,
            with_icache,
            None,
        )

    def test_scheme_config_knob_changes_key(self):
        base = self._key(scheme("M4"))
        assert self._key(scheme("M4", unroll_factor=8)) != base
        assert self._key(scheme("P4")) != base

    def test_tape_changes_key(self):
        base = self._key(scheme("M4"))
        assert self._key(scheme("M4"), test=list(self.test) + [1]) != base
        assert self._key(scheme("M4"), train=list(self.train) + [1]) != base

    def test_icache_flag_changes_key(self):
        assert self._key(scheme("M4")) != self._key(
            scheme("M4"), with_icache=True
        )

    def test_program_changes_key(self):
        other = workload_map()["wc"].program()
        changed = outcome_key(
            other,
            scheme("M4"),
            self.train,
            self.test,
            PAPER_MACHINE,
            False,
            None,
        )
        assert changed != self._key(scheme("M4"))

    def test_trace_key_depends_on_inputs_not_depth(self):
        tk = trace_key(self.program, self.train)
        assert trace_key(self.program, list(self.train) + [1]) != tk
        other = workload_map()["wc"].program()
        assert trace_key(other, self.train) != tk
        # The trace is depth-independent: one recording serves every depth.
        assert tk != profile_key(self.program, self.train, 15)

    def test_profile_and_reference_keys_depend_on_inputs(self):
        pk = profile_key(self.program, self.train, 15)
        assert profile_key(self.program, self.train, 10) != pk
        assert (
            profile_key(self.program, list(self.train) + [1], 15) != pk
        )
        rk = reference_key(self.program, self.test)
        assert reference_key(self.program, list(self.test) + [1]) != rk
        assert pk != rk
