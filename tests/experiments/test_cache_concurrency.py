"""Sharded-layout, flat-entry migration, and concurrent-access cache tests."""

import multiprocessing
import pickle

import pytest

from repro.experiments.cache import CacheStats, ExperimentCache


def test_entries_live_in_prefix_shards(tmp_path):
    cache = ExperimentCache(path=tmp_path)
    key = "ab" + "0" * 62
    cache.put(key, {"value": 1})
    entry = tmp_path / "ab" / f"{key}.pkl"
    assert entry.is_file()
    # Nothing lands in the flat root besides the shard directory itself.
    assert [p.name for p in tmp_path.iterdir()] == ["ab"]


def test_flat_layout_entry_migrates_on_first_read(tmp_path):
    key = "cd" + "1" * 62
    flat = tmp_path / f"{key}.pkl"
    flat.write_bytes(pickle.dumps({"value": 42}))

    cache = ExperimentCache(path=tmp_path)
    assert cache.get(key) == {"value": 42}
    assert cache.stats.disk_hits == 1
    assert cache.stats.migrations == 1
    assert not flat.exists()
    assert (tmp_path / "cd" / f"{key}.pkl").is_file()

    # A second cache instance reads it from the sharded location.
    fresh = ExperimentCache(path=tmp_path)
    assert fresh.get(key) == {"value": 42}
    assert fresh.stats.migrations == 0
    assert "migrated" not in fresh.stats.summary()


def test_corrupt_flat_entry_is_discarded(tmp_path):
    key = "ef" + "2" * 62
    flat = tmp_path / f"{key}.pkl"
    flat.write_bytes(b"not a pickle")
    cache = ExperimentCache(path=tmp_path)
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    assert not flat.exists()


def test_migration_counts_in_summary(tmp_path):
    key = "aa" + "3" * 62
    (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps(1))
    cache = ExperimentCache(path=tmp_path)
    cache.get(key)
    assert "1 flat entries migrated" in cache.stats.summary()


def test_cache_stats_merge_is_exact():
    a = CacheStats(hits=3, disk_hits=1, misses=2, stores=2, migrations=1)
    b = CacheStats(hits=5, disk_hits=4, misses=0, stores=1)
    a.merge(b)
    assert a == CacheStats(
        hits=8, disk_hits=5, misses=2, stores=3, migrations=1
    )
    assert a.lookups == 10
    assert a.hit_rate == pytest.approx(0.8)


def _writer(path, key, payload, barrier, results):
    cache = ExperimentCache(path=path)
    barrier.wait()
    for _ in range(25):
        cache.put(key, payload)
    results.put(cache.stats.stores)


def test_concurrent_same_key_writes_are_race_free(tmp_path):
    """Two processes hammering one key: every write is an atomic rename,
    so afterwards exactly one (complete) entry exists, both payloads being
    identical bytes, and no temp files are left behind."""
    key = "12" + "a" * 62
    payload = {"table": list(range(200))}
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    results = ctx.Queue()
    procs = [
        ctx.Process(
            target=_writer, args=(tmp_path, key, payload, barrier, results)
        )
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert results.get(timeout=10) == 25
    assert results.get(timeout=10) == 25

    reader = ExperimentCache(path=tmp_path)
    assert reader.get(key) == payload
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []
    entries = [p for p in tmp_path.rglob("*.pkl")]
    assert len(entries) == 1


def _racing_reader(path, key, out):
    cache = ExperimentCache(path=path)
    value = cache.get(key)
    out.put(value)


def test_concurrent_migration_single_winner(tmp_path):
    """Two processes reading the same flat-layout key concurrently: both
    get the value, and the entry ends up sharded exactly once."""
    key = "34" + "b" * 62
    payload = {"value": "migrate-me"}
    (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps(payload))
    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_racing_reader, args=(tmp_path, key, out))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert out.get(timeout=10) == payload
    assert out.get(timeout=10) == payload
    assert not (tmp_path / f"{key}.pkl").exists()
    assert (tmp_path / "34" / f"{key}.pkl").is_file()
