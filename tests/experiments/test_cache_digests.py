"""Regression tests for automatic cache invalidation and the memo bound.

PR 3 fixed two cache bugs: keys that ignored compiler internals (so an
edited scheduler silently served stale outcomes until someone hand-bumped
``CACHE_FORMAT``) and an unbounded fingerprint memo pinning every program
ever hashed.  These tests pin both fixes.
"""

import shutil
from pathlib import Path

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    COMPILER_SOURCES,
    FINGERPRINT_MEMO_LIMIT,
    INTERP_SOURCES,
    PROFILE_SOURCES,
    outcome_key,
    profile_key,
    program_fingerprint,
    reference_key,
    source_digest,
    trace_key,
)
from repro.formation import scheme
from repro.frontend import compile_source
from repro.scheduling.machine import PAPER_MACHINE

REPRO_ROOT = Path(cache_mod.__file__).resolve().parent.parent


def tiny_program(ret=7):
    return compile_source(f"func main() {{ return {ret}; }}")


class TestSourceDigest:
    def _copy_tree(self, tmp_path):
        root = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, root)
        return root

    def test_editing_scheduling_changes_compiler_digest_only(self, tmp_path):
        root = self._copy_tree(tmp_path)
        before_compiler = source_digest(COMPILER_SOURCES, root=root)
        before_interp = source_digest(INTERP_SOURCES, root=root)
        target = root / "scheduling" / "list_scheduler.py"
        target.write_text(target.read_text() + "\n# tweak\n")
        cache_mod._SOURCE_DIGESTS.clear()
        assert source_digest(COMPILER_SOURCES, root=root) != before_compiler
        assert source_digest(INTERP_SOURCES, root=root) == before_interp
        cache_mod._SOURCE_DIGESTS.clear()

    def test_editing_simulator_changes_compiler_digest(self, tmp_path):
        root = self._copy_tree(tmp_path)
        before = source_digest(COMPILER_SOURCES, root=root)
        target = sorted((root / "simulate").glob("*.py"))[0]
        target.write_text(target.read_text() + "\n# tweak\n")
        cache_mod._SOURCE_DIGESTS.clear()
        assert source_digest(COMPILER_SOURCES, root=root) != before
        cache_mod._SOURCE_DIGESTS.clear()

    def test_editing_interpreter_changes_every_digest(self, tmp_path):
        root = self._copy_tree(tmp_path)
        befores = {
            parts: source_digest(parts, root=root)
            for parts in (COMPILER_SOURCES, PROFILE_SOURCES, INTERP_SOURCES)
        }
        target = root / "interp" / "interpreter.py"
        target.write_text(target.read_text() + "\n# tweak\n")
        cache_mod._SOURCE_DIGESTS.clear()
        for parts, before in befores.items():
            assert source_digest(parts, root=root) != before
        cache_mod._SOURCE_DIGESTS.clear()

    def test_digest_is_memoized_and_stable(self):
        assert source_digest(COMPILER_SOURCES) == source_digest(
            COMPILER_SOURCES
        )

    def test_sources_exist(self):
        # Guard against the digest silently covering nothing after a
        # package reorganization.
        for part in set(COMPILER_SOURCES + PROFILE_SOURCES + INTERP_SOURCES):
            assert (REPRO_ROOT / part).exists(), part


class TestKeysIncludeCodeDigests:
    def _keys(self):
        program = tiny_program()
        config = scheme("M4")
        train, test = (1, 2, 3), (4, 5)
        return {
            "outcome": outcome_key(
                program, config, train, test, PAPER_MACHINE, False, None
            ),
            "profile": profile_key(program, train, depth=4),
            "trace": trace_key(program, train),
            "reference": reference_key(program, test),
        }

    def test_compiler_digest_changes_outcome_key_only(self, monkeypatch):
        before = self._keys()
        monkeypatch.setattr(
            cache_mod, "compiler_digest", lambda: "sentinel-compiler"
        )
        after = self._keys()
        assert after["outcome"] != before["outcome"]
        assert after["profile"] == before["profile"]
        assert after["trace"] == before["trace"]
        assert after["reference"] == before["reference"]

    def test_profile_digest_changes_profile_key_only(self, monkeypatch):
        before = self._keys()
        monkeypatch.setattr(
            cache_mod, "profile_digest", lambda: "sentinel-profile"
        )
        after = self._keys()
        assert after["profile"] != before["profile"]
        assert after["outcome"] == before["outcome"]
        assert after["trace"] == before["trace"]

    def test_interpreter_digest_changes_trace_and_reference(
        self, monkeypatch
    ):
        before = self._keys()
        monkeypatch.setattr(
            cache_mod, "interpreter_digest", lambda: "sentinel-interp"
        )
        after = self._keys()
        assert after["trace"] != before["trace"]
        assert after["reference"] != before["reference"]
        assert after["outcome"] == before["outcome"]
        assert after["profile"] == before["profile"]


class TestFingerprintMemoBound:
    def test_memo_stays_bounded(self):
        programs = [tiny_program(i) for i in range(FINGERPRINT_MEMO_LIMIT * 2)]
        for program in programs:
            program_fingerprint(program)
        assert len(cache_mod._FINGERPRINTS) <= FINGERPRINT_MEMO_LIMIT

    def test_memo_still_caches_recent_programs(self):
        program = tiny_program(99)
        first = program_fingerprint(program)
        entry = cache_mod._FINGERPRINTS[id(program)]
        assert entry[0] is program
        assert program_fingerprint(program) == first

    def test_distinct_programs_distinct_fingerprints(self):
        assert program_fingerprint(tiny_program(1)) != program_fingerprint(
            tiny_program(2)
        )
