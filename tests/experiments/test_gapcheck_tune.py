"""Tests for the scheduler-quality experiments: ``gapcheck`` and ``tune``."""

import json

from repro.experiments import (
    format_gap_check,
    format_tune,
    gap_check,
    gap_check_json,
    replay_tune,
    tune_json,
    tune_weights,
)
from repro.scheduling import REALISTIC_MACHINE


def small_gap_check(**kwargs):
    return gap_check(
        scheme_names=("P4",),
        scale=0.25,
        workload_names=["wc", "eqn"],
        max_ops=32,
        node_budget=5_000,
        **kwargs,
    )


class TestGapCheck:
    def test_rows_and_invariants(self):
        summary = small_gap_check()
        assert summary.rows, "every scheduled superblock yields a row"
        for row in summary.rows:
            assert row.status in ("optimal", "budget", "skipped")
            assert row.list_cycles >= 1
            # The oracle length is achievable, so never above the list
            # schedule's; the gap is its complement.
            assert 0 <= row.oracle_cycles <= row.list_cycles
            assert row.gap == row.list_cycles - row.oracle_cycles
            assert row.entries >= 0
            if row.status == "optimal":
                assert row.nodes >= 1
            if row.status == "skipped":
                assert row.ops > 32

    def test_weighted_totals_consistent(self):
        summary = small_gap_check()
        assert summary.weighted_gap == sum(
            r.weighted_gap for r in summary.rows
        )
        assert 0.0 <= summary.gap_fraction <= 1.0
        counted = (
            summary.count("optimal")
            + summary.count("budget")
            + summary.count("skipped")
        )
        assert counted == len(summary.rows)

    def test_list_scheduler_is_optimal_on_suite(self):
        # The headline experimental result: on these workloads the
        # height-priority list scheduler leaves nothing on the table for
        # any superblock the oracle can prove.
        summary = small_gap_check()
        proved = [r for r in summary.rows if r.status == "optimal"]
        assert proved
        assert all(r.gap == 0 for r in proved)

    def test_json_round_trip(self):
        summary = small_gap_check()
        payload = json.loads(gap_check_json(summary))
        assert len(payload["rows"]) == len(summary.rows)
        assert payload["totals"]["gap_fraction"] == summary.gap_fraction

    def test_format_renders(self):
        summary = small_gap_check()
        text = format_gap_check(summary)
        assert "superblocks" in text

    def test_realistic_machine(self):
        summary = gap_check(
            scheme_names=("P4",),
            scale=0.25,
            workload_names=["wc"],
            machine=REALISTIC_MACHINE,
            max_ops=24,
            node_budget=2_000,
        )
        assert summary.rows


def small_tune(seed=0):
    return tune_weights(
        scheme_names=("P4",),
        scale=0.25,
        workload_names=["wc"],
        samples=3,
        seed=seed,
        cache=None,
    )


class TestTune:
    def test_deterministic_for_seed(self):
        a, b = small_tune(), small_tune()
        assert tune_json(a) == tune_json(b)

    def test_baseline_is_candidate_zero(self):
        payload = small_tune()
        first = payload["candidates"][0]
        assert (first["height"], first["slack"], first["path"]) == (
            1.0,
            0.0,
            0.0,
        )
        assert payload["baseline_cycles"] == first["cycles"]

    def test_best_never_worse_than_baseline(self):
        payload = small_tune()
        assert payload["best"]["cycles"] <= payload["baseline_cycles"]
        assert payload["improvement"] >= 0.0

    def test_weights_within_search_space(self):
        payload = small_tune(seed=5)
        for cand in payload["candidates"][1:]:
            assert 0.25 <= cand["height"] <= 2.0
            assert 0.0 <= cand["slack"] <= 1.0
            assert 0.0 <= cand["path"] <= 0.5

    def test_replay_round_trip(self, tmp_path):
        payload = small_tune(seed=2)
        out = tmp_path / "tune.json"
        out.write_text(tune_json(payload))
        assert replay_tune(str(out), cache=None)

    def test_replay_detects_tampering(self, tmp_path):
        payload = small_tune(seed=2)
        payload["best"]["cycles"] -= 1
        out = tmp_path / "tampered.json"
        out.write_text(tune_json(payload))
        assert not replay_tune(str(out), cache=None)

    def test_format_renders(self):
        payload = small_tune()
        text = format_tune(payload)
        assert "best" in text.lower()
