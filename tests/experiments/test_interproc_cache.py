"""Cache correctness for the interprocedural schemes (P4i/P4k).

Three properties: editing the inliner or the k-iteration profiler
invalidates exactly the digests that depend on them; the trace key is
independent of ``k`` (one cached training trace serves every window);
and changing ``k`` therefore re-forms without re-executing the training
run.
"""

import shutil
from pathlib import Path

import pytest

import repro.pipeline as pipeline_mod
from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    COMPILER_SOURCES,
    INTERP_SOURCES,
    PROFILE_SOURCES,
    outcome_key,
    source_digest,
    trace_key,
)
from repro.formation import scheme
from repro.pipeline import run_scheme
from repro.profiling import collect_profiles, record_trace
from repro.scheduling.machine import PAPER_MACHINE

from tests.support import alternating_branch_trace, diamond_program

REPRO_ROOT = Path(cache_mod.__file__).resolve().parent.parent


def _copy_tree(tmp_path):
    root = tmp_path / "repro"
    shutil.copytree(REPRO_ROOT, root)
    return root


def _digests(root):
    return {
        parts: source_digest(parts, root=root)
        for parts in (COMPILER_SOURCES, PROFILE_SOURCES, INTERP_SOURCES)
    }


class TestNewModulesInDigests:
    def test_editing_inliner_invalidates_outcomes_only(self, tmp_path):
        root = _copy_tree(tmp_path)
        before = _digests(root)
        target = root / "formation" / "inline.py"
        target.write_text(target.read_text() + "\n# tweak\n")
        cache_mod._SOURCE_DIGESTS.clear()
        after = _digests(root)
        assert after[COMPILER_SOURCES] != before[COMPILER_SOURCES]
        assert after[PROFILE_SOURCES] == before[PROFILE_SOURCES]
        assert after[INTERP_SOURCES] == before[INTERP_SOURCES]
        cache_mod._SOURCE_DIGESTS.clear()

    def test_editing_kiter_invalidates_profiles_too(self, tmp_path):
        root = _copy_tree(tmp_path)
        before = _digests(root)
        target = root / "profiling" / "kiter.py"
        target.write_text(target.read_text() + "\n# tweak\n")
        cache_mod._SOURCE_DIGESTS.clear()
        after = _digests(root)
        assert after[COMPILER_SOURCES] != before[COMPILER_SOURCES]
        assert after[PROFILE_SOURCES] != before[PROFILE_SOURCES]
        assert after[INTERP_SOURCES] == before[INTERP_SOURCES]
        cache_mod._SOURCE_DIGESTS.clear()


class TestKIndependentTraceKey:
    def test_trace_key_same_outcome_key_differs_across_k(self):
        program = diamond_program()
        train, test = (1, 2, -1), (3, 4, -1)
        keys = {}
        for k in (4, 16):
            config = scheme("P4k", k=k)
            keys[k] = outcome_key(
                program, config, train, test, PAPER_MACHINE, False, None
            )
        assert keys[4] != keys[16]
        # The trace is profiler-input, not profiler-output: same key
        # whatever window the k-iteration pass will replay it at.
        assert trace_key(program, train) == trace_key(program, train)

    def test_inline_and_kiter_configs_change_outcome_key(self):
        program = diamond_program()
        train, test = (1, 2, -1), (3, 4, -1)
        names = ("P4", "P4i", "P4k")
        keys = {
            name: outcome_key(
                program, scheme(name), train, test, PAPER_MACHINE, False, None
            )
            for name in names
        }
        assert len(set(keys.values())) == len(names)


class TestChangingKDoesNotReexecute:
    def test_p4k_reforms_from_cached_trace(self, monkeypatch):
        """With a recorded training run supplied, varying ``k`` must never
        re-enter the interpreter for training."""
        program = diamond_program()
        tape = alternating_branch_trace(24)
        traced = record_trace(program, input_tape=tape)
        profiles = collect_profiles(program, input_tape=tape)

        def boom(*args, **kwargs):
            raise AssertionError(
                "training re-executed despite cached trace/profiles"
            )

        monkeypatch.setattr(pipeline_mod, "record_trace", boom)
        monkeypatch.setattr(pipeline_mod, "collect_profiles", boom)
        cycles = {}
        for k in (2, 8, 16):
            outcome = run_scheme(
                program,
                "P4k",
                tape,
                tape,
                config=scheme("P4k", k=k),
                profiles=profiles,
                traced=traced,
            )
            cycles[k] = outcome.result.cycles
        assert all(isinstance(c, int) and c > 0 for c in cycles.values())

    def test_p4_never_needs_the_trace(self, monkeypatch):
        program = diamond_program()
        tape = alternating_branch_trace(24)
        profiles = collect_profiles(program, input_tape=tape)
        monkeypatch.setattr(
            pipeline_mod,
            "record_trace",
            lambda *a, **kw: pytest.fail("P4 recorded a trace"),
        )
        outcome = run_scheme(
            program, "P4", tape, tape, profiles=profiles
        )
        assert outcome.result.cycles > 0
