"""Shared IR fixtures for the test suite.

These builders produce the small control-flow shapes the paper reasons
about: the Figure 1 diamond, the Figure 3 conditional loop, straight-line
code, and a couple of call-heavy programs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir import FunctionBuilder, Opcode, Program, build_program


def straightline_program(values: Sequence[int] = (1, 2, 3)) -> Program:
    """main: prints sum of ``values`` computed in straight-line code."""
    fb = FunctionBuilder("main")
    b = fb.block("entry")
    acc = fb.reg()
    b.li(acc, 0)
    for v in values:
        tmp = fb.reg()
        b.li(tmp, v)
        b.add(acc, acc, tmp)
    b.print_(acc)
    b.ret(acc)
    return build_program(fb)


def diamond_program() -> Program:
    """The Figure 1 shape: A branches to B or X; B branches to C or Y.

    main reads words from input; for each word ``w``:
      * block A: w < 50 goes to B, otherwise X
      * block B: w % 2 == 0 goes to C, otherwise Y
    Blocks X, C, Y each print a distinguishing tag, then loop back to A.
    A negative read ends the program.
    """
    fb = FunctionBuilder("main")
    a = fb.block("A")
    b = fb.block("B")
    c = fb.block("C")
    x = fb.block("X")
    y = fb.block("Y")
    done = fb.block("done")

    w = fb.reg()
    t = fb.reg()
    fifty = fb.reg()
    zero = fb.reg()
    two = fb.reg()
    tag = fb.reg()

    a.read(w)
    a.li(zero, 0)
    a.cmplt(t, w, zero)
    a.br(t, "done", "A_test")

    a2 = fb.block("A_test")
    a2.li(fifty, 50)
    a2.cmplt(t, w, fifty)
    a2.br(t, "B", "X")

    b.li(two, 2)
    b.mod(t, w, two)
    b.br(t, "Y", "C")

    c.li(tag, 100)
    c.print_(tag)
    c.jmp("A")

    x.li(tag, 200)
    x.print_(tag)
    x.jmp("A")

    y.li(tag, 300)
    y.print_(tag)
    y.jmp("A")

    done.ret()
    return build_program(fb)


def figure3_loop_program() -> Program:
    """The Figure 3 loop: ``A`` tests a condition; ``B`` and ``C`` are the
    two arms; ``D`` closes the loop.

    Reads a count and a pattern selector ``mode`` from input.  ``mode 0``
    alternates T,T,T,F (the ``alt`` microbenchmark pattern); ``mode 1`` is
    phased (first 2/3 true, then false) like ``ph``.
    """
    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    a = fb.block("A")
    b = fb.block("B")
    c = fb.block("C")
    d = fb.block("D")
    exit_ = fb.block("exit")

    n = fb.reg()
    mode = fb.reg()
    i = fb.reg()
    t = fb.reg()
    cond = fb.reg()
    four = fb.reg()
    three = fb.reg()
    acc = fb.reg()
    lim = fb.reg()

    entry.read(n)
    entry.read(mode)
    entry.li(i, 0)
    entry.li(acc, 0)
    entry.jmp("A")

    # A: decide which arm to take this iteration.
    a.li(four, 4)
    a.mod(t, i, four)
    a.li(three, 3)
    a.cmplt(cond, t, three)  # mode 0: true 3 of every 4 iterations
    a.br(mode, "A_phased", "A_alt")

    a_alt = fb.block("A_alt")
    a_alt.br(cond, "B", "C")

    a_ph = fb.block("A_phased")
    two = fb.reg()
    a_ph.li(three, 3)
    a_ph.li(two, 2)
    a_ph.mul(lim, n, two)
    a_ph.div(lim, lim, three)
    a_ph.cmplt(cond, i, lim)  # first 2n/3 iterations go left
    a_ph.br(cond, "B", "C")

    one = fb.reg()
    b.li(one, 1)
    b.add(acc, acc, one)
    b.jmp("D")

    c.li(one, 10)
    c.add(acc, acc, one)
    c.jmp("D")

    d.li(one, 1)
    d.add(i, i, one)
    d.cmplt(t, i, n)
    d.br(t, "A", "exit")

    exit_.print_(acc)
    exit_.ret(acc)
    return build_program(fb)


def call_program() -> Program:
    """main calls ``square`` in a loop; exercises frames and call counting."""
    sq = FunctionBuilder("square", num_params=1)
    sb = sq.block("entry")
    (p,) = sq.params
    r = sq.reg()
    sb.mul(r, p, p)
    sb.ret(r)

    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    loop = fb.block("loop")
    body = fb.block("body")
    done = fb.block("done")
    i = fb.reg()
    n = fb.reg()
    t = fb.reg()
    s = fb.reg()
    one = fb.reg()

    entry.read(n)
    entry.li(i, 0)
    entry.jmp("loop")
    loop.cmplt(t, i, n)
    loop.br(t, "body", "done")
    body.call("square", [i], dest=s)
    body.print_(s)
    body.li(one, 1)
    body.add(i, i, one)
    body.jmp("loop")
    done.ret()
    return build_program(fb, sq)


def alternating_branch_trace(n: int, period: int = 4) -> List[int]:
    """Input tape making the diamond take B for ``period-1`` of each
    ``period`` iterations (values < 50), then X once (values >= 50)."""
    tape = []
    for k in range(n):
        tape.append(10 if k % period != period - 1 else 60)
    tape.append(-1)
    return tape
