"""Tests for the top-level command line (python -m repro)."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_suite(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("alt", "gcc", "vortex"):
            assert name in out


class TestRun:
    def test_run_workload(self, capsys):
        code = main(
            ["run", "--workload", "alt", "--schemes", "BB", "P4",
             "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BB" in out and "P4" in out and "cycles" in out

    def test_run_with_icache(self, capsys):
        code = main(
            ["run", "--workload", "corr", "--schemes", "M4",
             "--scale", "0.1", "--icache"]
        )
        assert code == 0
        assert "miss%" in capsys.readouterr().out

    def test_run_source_file(self, tmp_path, capsys):
        source = tmp_path / "prog.mc"
        source.write_text(
            "func main() { var x = read(); print(x * 2); }"
        )
        code = main(
            ["run", "--source", str(source), "--schemes", "BB",
             "--train", "5", "--test", "7"]
        )
        assert code == 0
        assert "BB" in capsys.readouterr().out

    def test_run_requires_target(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_realistic_machine_flag(self, capsys):
        code = main(
            ["run", "--workload", "alt", "--schemes", "BB",
             "--scale", "0.05", "--realistic"]
        )
        assert code == 0
        assert "realistic" in capsys.readouterr().out
