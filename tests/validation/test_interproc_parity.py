"""Differential-oracle parity for the interprocedural schemes.

Three layers: the full validate_suite oracle over every workload under
P4i and P4k; a fuzz campaign with the inliner and k-iteration profiler
on; and a byte-identity check that the P4i/P4k presets with their
interprocedural stage disabled collapse to exactly P4.
"""

import pickle

from dataclasses import replace

import pytest

from repro.experiments.validate import validate_suite
from repro.formation import scheme
from repro.pipeline import run_scheme
from repro.validation.fuzz import run_fuzz
from repro.workloads import SUITE_ORDER, get_workload

SCALE = 0.25


class TestSuiteParity:
    def test_all_workloads_validate_under_p4i_and_p4k(self):
        rows = validate_suite(
            ("P4i", "P4k"), scale=SCALE, cache=None, trace_cache=False
        )
        assert len(rows) == len(SUITE_ORDER) * 2
        bad = [r for r in rows if not r.ok]
        assert not bad, [f"{r.workload}/{r.scheme}" for r in bad]


class TestFuzzParity:
    def test_fuzz_seeds_clean_with_inliner_on(self):
        report = run_fuzz(
            seeds=25, schemes=("P4i", "P4k"), reduce=False
        )
        assert report.ok, [
            (f.seed, f.kind, f.message) for f in report.failures
        ]


class TestDisabledStagesAreP4:
    @pytest.mark.parametrize("name", ["wc", "gcc", "eqn"])
    def test_disabled_presets_byte_identical_to_p4(self, name):
        """P4i with inline=None and P4k with kiter=None must produce the
        exact P4 schedule — the new config fields are result-transparent
        when off."""
        workload = get_workload(name)
        train = workload.train_tape(SCALE)
        test = workload.test_tape(SCALE)
        base = run_scheme(workload.fresh_program(), "P4", train, test)
        for preset in ("P4i", "P4k"):
            config = replace(
                scheme(preset), name="P4", inline=None, kiter=None
            )
            got = run_scheme(
                workload.fresh_program(), "P4", train, test, config=config
            )
            assert pickle.dumps(got.compiled) == pickle.dumps(
                base.compiled
            ), preset
            assert got.result.cycles == base.result.cycles
