"""The differential fuzzing harness end to end (bounded seed counts)."""

from repro.validation.fuzz import (
    classify_failure,
    format_fuzz_report,
    fuzz_one,
    fuzz_tapes,
    run_fuzz,
)


class TestFuzzTapes:
    def test_deterministic_per_seed(self):
        assert fuzz_tapes(7) == fuzz_tapes(7)
        assert fuzz_tapes(7) != fuzz_tapes(8)

    def test_train_and_test_differ(self):
        train, test = fuzz_tapes(3)
        assert train != test


class TestClassifyFailure:
    def test_clean_program_has_no_failure(self):
        source = "func main() {\n    print(read() + 1);\n    return 0;\n}\n"
        assert classify_failure(source, seed=0) is None

    def test_frontend_error_is_classified(self):
        found = classify_failure("func main() { return x; }", seed=0)
        assert found is not None
        kind, message = found
        assert kind == "frontend:MiniCError"
        assert "x" in message

    def test_scheme_name_tags_the_kind(self):
        # An interpreter-level fault (division by zero) is caught before
        # any scheme runs and classified against the reference stage.
        source = "func main() {\n    print(1 / 0);\n    return 0;\n}\n"
        found = classify_failure(source, seed=0)
        assert found is not None
        assert found[0].startswith("interp:")


class TestFuzzCampaign:
    def test_first_seeds_are_clean(self):
        report = run_fuzz(seeds=6)
        assert report.ok
        assert report.seeds == 6
        assert fuzz_one(0) is None
        assert "0 failure(s)" in format_fuzz_report(report)
