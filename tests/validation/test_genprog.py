"""The MiniC generator: determinism and well-formedness of its output."""

import random

from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.validation.genprog import DEFAULT_CONFIG, GenConfig, generate_source

SMOKE_SEEDS = 60


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 1, 7, 41, 9999):
            assert generate_source(seed) == generate_source(seed)

    def test_different_seeds_differ(self):
        sources = {generate_source(seed) for seed in range(20)}
        # A couple of tiny collisions would be acceptable; wholesale
        # repetition would mean the seed is being ignored.
        assert len(sources) > 15

    def test_config_changes_output(self):
        small = GenConfig(max_helpers=0, max_stmt_depth=1)
        assert generate_source(3, small) != generate_source(3, DEFAULT_CONFIG)


class TestWellFormedness:
    def test_generated_programs_compile_and_run(self):
        """Every generated program must compile and execute cleanly: no
        semantic errors, no faults, no runaway loops, and in particular no
        reads of conditionally-initialized variables (the two generator
        bugs this pins: statements after break/continue, and variables
        escaping the block that declared them)."""
        for seed in range(SMOKE_SEEDS):
            source = generate_source(seed)
            program = compile_source(source)
            tape = [
                random.Random(seed ^ 0x5EED).randint(0, 255)
                for _ in range(64)
            ]
            result = run_program(
                program, input_tape=tape, step_limit=2_000_000
            )
            assert result.return_value is not None

    def test_main_always_prints(self):
        # main ends with a print + return, so every program's behavior is
        # observable by the differential oracle.
        for seed in range(10):
            program = compile_source(generate_source(seed))
            result = run_program(
                program, input_tape=[1] * 64, step_limit=2_000_000
            )
            assert len(result.output) >= 1
