"""Stage-checkpoint invariants: pass on real pipelines, catch corruption."""

import pickle

import pytest

from repro.frontend import compile_source
from repro.ir.instructions import Opcode, binop, li, mov, spill_ld, spill_st
from repro.pipeline import run_scheme
from repro.validation import (
    AllocationSnapshot,
    ValidationConfig,
    ValidationError,
    check_allocation_value_flow,
    check_cfg_consistency,
    check_renamed_code,
    require,
)

SOURCE = """\
func main() {
    var total = 0;
    for (var i = 0; i < 20; i = i + 1) {
        if ((read() & 3) != 0) {
            total = total + i;
        } else {
            total = total - 1;
        }
    }
    print(total);
    return total;
}
"""


class TestValidationConfig:
    def test_full_enables_everything(self):
        config = ValidationConfig.full()
        assert config.any_formation_checks
        assert config.any_compact_checks

    def test_none_disables_everything(self):
        config = ValidationConfig.none()
        assert not config.any_formation_checks
        assert not config.any_compact_checks

    def test_picklable_for_worker_processes(self):
        config = ValidationConfig.full()
        assert pickle.loads(pickle.dumps(config)) == config

    def test_require_raises_with_stage(self):
        require("anywhere", [])  # empty problem list: no error
        with pytest.raises(ValidationError) as info:
            require("compact:renaming", ["bad thing"])
        assert info.value.stage == "compact:renaming"
        assert "bad thing" in str(info.value)


class TestPipelineUnderValidation:
    def test_all_schemes_pass_checkpoints(self):
        program = compile_source(SOURCE)
        train = [k % 7 for k in range(40)]
        test = [k % 5 for k in range(40)]
        for scheme in ("BB", "M4", "P4"):
            outcome = run_scheme(
                program,
                scheme,
                train,
                test,
                validation=ValidationConfig.full(),
            )
            assert outcome.reference is not None
            assert outcome.result.output == outcome.reference.output


class TestCfgConsistency:
    def test_clean_program_has_no_problems(self):
        program = compile_source(SOURCE)
        assert check_cfg_consistency(program) == []

    def test_detects_label_mismatch(self):
        program = compile_source(SOURCE)
        proc = next(iter(program.procedures()))
        block = proc.block(proc.entry_label)
        block.label = "not_the_registered_name"
        problems = check_cfg_consistency(program)
        assert any("labelled" in p for p in problems)


class _FakeCode:
    """Just enough of SuperblockCode for the instruction-level checks."""

    proc = "p"
    head = "h"

    def __init__(self, instructions):
        self.instructions = instructions


class TestRenamedCode:
    ARCH_BOUND = 8

    def test_clean_trace_passes(self):
        code = _FakeCode([
            li(10, 1),
            binop(Opcode.ADD, 11, 10, 10),
            mov(3, 11),  # writing arch regs is fine for moves
        ])
        assert check_renamed_code(code, self.ARCH_BOUND) == []

    def test_detects_temp_redefinition(self):
        code = _FakeCode([li(10, 1), li(10, 2)])
        problems = check_renamed_code(code, self.ARCH_BOUND)
        assert any("redefined" in p for p in problems)

    def test_detects_use_before_def(self):
        code = _FakeCode([binop(Opcode.ADD, 11, 10, 10)])
        problems = check_renamed_code(code, self.ARCH_BOUND)
        assert any("before definition" in p for p in problems)

    def test_detects_non_move_arch_write(self):
        code = _FakeCode([li(3, 1)])
        problems = check_renamed_code(code, self.ARCH_BOUND)
        assert any("architectural" in p for p in problems)


class TestAllocationValueFlow:
    NUM_REGS = 16

    def _snapshot(self, instructions, exit_live=None):
        return AllocationSnapshot(
            instructions=[i.copy() for i in instructions],
            exit_live=exit_live or {},
        )

    def test_identity_allocation_passes(self):
        virtual = [li(5, 1), binop(Opcode.ADD, 6, 5, 5)]
        code = _FakeCode([i.copy() for i in virtual])
        problems = check_allocation_value_flow(
            code, self._snapshot(virtual), {}, {}, self.NUM_REGS
        )
        assert problems == []

    def test_spill_round_trip_passes(self):
        virtual = [li(5, 1), binop(Opcode.ADD, 6, 5, 5)]
        code = _FakeCode([
            li(2, 1),
            spill_st(0, 2),
            spill_ld(3, 0),
            binop(Opcode.ADD, 2, 3, 3),
        ])
        problems = check_allocation_value_flow(
            code, self._snapshot(virtual), {}, {}, self.NUM_REGS
        )
        assert problems == []

    def test_detects_clobbered_source(self):
        virtual = [li(5, 1), li(6, 2), binop(Opcode.ADD, 7, 5, 6)]
        # The allocator "reused" r2 for both values: the add now sees the
        # second definition twice.
        code = _FakeCode([
            li(2, 1),
            li(2, 2),
            binop(Opcode.ADD, 3, 2, 2),
        ])
        problems = check_allocation_value_flow(
            code, self._snapshot(virtual), {}, {}, self.NUM_REGS
        )
        assert any("sources carry" in p for p in problems)

    def test_detects_lost_exit_live_value(self):
        virtual = [li(5, 1), li(6, 2)]
        # v5 is live at the exit taken at instruction 1 and the map says it
        # lives in r2 — but the physical code computed it into r3.
        code = _FakeCode([li(3, 1), li(2, 2)])
        problems = check_allocation_value_flow(
            code,
            self._snapshot(virtual, exit_live={1: {5}}),
            {5: 2},
            {},
            self.NUM_REGS,
        )
        assert any("exit-live" in p for p in problems)

    def test_detects_missing_instructions(self):
        virtual = [li(5, 1), li(6, 2)]
        code = _FakeCode([li(2, 1)])
        problems = check_allocation_value_flow(
            code, self._snapshot(virtual), {}, {}, self.NUM_REGS
        )
        assert any("covers 1 of 2" in p for p in problems)
