"""The delta-debugging reducer: faithful rendering, real shrinking."""

import random

import pytest

from repro.frontend import compile_source, parse
from repro.interp.interpreter import run_program
from repro.validation.genprog import generate_source
from repro.validation.reduce import reduce_source, render_module


class TestRenderModule:
    def test_round_trip_preserves_behavior(self):
        for seed in range(25):
            source = generate_source(seed)
            rendered = render_module(parse(source))
            tape = [
                random.Random(seed).randint(0, 255) for _ in range(64)
            ]
            original = run_program(
                compile_source(source), input_tape=tape, step_limit=2_000_000
            )
            round_tripped = run_program(
                compile_source(rendered),
                input_tape=tape,
                step_limit=2_000_000,
            )
            assert original.output == round_tripped.output
            assert original.return_value == round_tripped.return_value

    def test_render_is_reparseable_fixpoint(self):
        source = generate_source(11)
        once = render_module(parse(source))
        twice = render_module(parse(once))
        assert once == twice


KNOWN_BAD = """\
func helper(a, b) {
    return (a * b) & 65535;
}

func main() {
    var x = 5;
    var y = helper(x, 3);
    print(7);
    if (x < 9) {
        print(42);
    } else {
        print(1);
    }
    for (var i = 0; i < 4; i = i + 1) {
        mem[i] = i * 2;
    }
    print(y);
    return 0;
}
"""


def _prints_42(source: str) -> bool:
    try:
        result = run_program(
            compile_source(source), input_tape=[], step_limit=200_000
        )
    except Exception:
        return False
    return 42 in result.output


class TestReduceSource:
    def test_shrinks_known_bad_input(self):
        reduced = reduce_source(KNOWN_BAD, _prints_42)
        assert _prints_42(reduced)
        assert len(reduced) < len(KNOWN_BAD) / 3
        # The failure-irrelevant structure must be gone entirely.
        assert "helper" not in reduced
        assert "for" not in reduced

    def test_result_still_satisfies_predicate(self):
        reduced = reduce_source(KNOWN_BAD, _prints_42, max_checks=50)
        assert _prints_42(reduced)

    def test_rejects_non_failing_input(self):
        with pytest.raises(ValueError):
            reduce_source(KNOWN_BAD, lambda source: False)

    def test_budget_zero_returns_input_rendered(self):
        reduced = reduce_source(KNOWN_BAD, _prints_42, max_checks=0)
        assert _prints_42(reduced)
