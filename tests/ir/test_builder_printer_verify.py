"""Tests for the builder API, the printer, and the IR verifier."""

import pytest

from repro.ir import (
    FunctionBuilder,
    IRError,
    Opcode,
    build_program,
    check_program,
    format_program,
    verify_program,
)

from tests.support import call_program, diamond_program, straightline_program


class TestBuilder:
    def test_first_block_is_entry(self):
        fb = FunctionBuilder("f")
        fb.block("start").ret()
        assert fb.proc.entry_label == "start"

    def test_block_lookup_returns_same_builder(self):
        fb = FunctionBuilder("f")
        a = fb.block("a")
        again = fb.block("a")
        assert a is again

    def test_anonymous_block_gets_fresh_label(self):
        fb = FunctionBuilder("f")
        b1 = fb.block()
        b2 = fb.block()
        assert b1.label != b2.label

    def test_params_preallocated(self):
        fb = FunctionBuilder("f", num_params=2)
        assert fb.params == (0, 1)
        assert fb.reg() == 2

    def test_regs_bulk_allocation(self):
        fb = FunctionBuilder("f")
        assert fb.regs(3) == [0, 1, 2]

    def test_alu_arity_checked(self):
        fb = FunctionBuilder("f")
        b = fb.block("entry")
        with pytest.raises(ValueError):
            b.alu(Opcode.ADD, 0, 1, 2, 3)

    def test_build_program_collects_functions(self):
        prog = call_program()
        assert set(prog.names) == {"main", "square"}
        assert prog.entry == "main"


class TestPrinter:
    def test_format_contains_labels_and_ops(self):
        text = format_program(diamond_program())
        assert "func main()" in text
        assert "A:" in text
        assert "br" in text
        assert "ret" in text

    def test_format_straightline(self):
        text = format_program(straightline_program())
        assert "li" in text and "add" in text and "print" in text


class TestVerifier:
    def test_clean_programs_verify(self):
        for prog in (diamond_program(), call_program(), straightline_program()):
            assert verify_program(prog) == []

    def test_unknown_target_detected(self):
        fb = FunctionBuilder("main")
        fb.block("entry").jmp("nowhere")
        problems = verify_program(build_program(fb))
        assert any("unknown target" in p for p in problems)

    def test_missing_terminator_detected(self):
        fb = FunctionBuilder("main")
        fb.block("entry").li(0, 1)
        problems = verify_program(build_program(fb))
        assert any("missing terminator" in p for p in problems)

    def test_call_to_missing_procedure_detected(self):
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        b.call("ghost")
        b.ret()
        problems = verify_program(build_program(fb))
        assert any("missing" in p and "ghost" in p for p in problems)

    def test_call_arity_mismatch_detected(self):
        callee = FunctionBuilder("f", num_params=2)
        callee.block("entry").ret()
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        r = fb.reg()
        b.li(r, 1)
        b.call("f", [r])
        b.ret()
        problems = verify_program(build_program(fb, callee))
        assert any("passes 1 args" in p for p in problems)

    def test_missing_entry_detected(self):
        fb = FunctionBuilder("helper")
        fb.block("entry").ret()
        problems = verify_program(build_program(fb, entry="main"))
        assert any("missing entry" in p for p in problems)

    def test_check_program_raises(self):
        fb = FunctionBuilder("main")
        fb.block("entry").jmp("nowhere")
        with pytest.raises(IRError):
            check_program(build_program(fb))
