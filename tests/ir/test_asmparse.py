"""Round-trip tests: printer output parses back to identical IR."""

import pytest

from repro.frontend import compile_source
from repro.interp import run_program
from repro.ir import (
    AsmParseError,
    format_program,
    parse_program,
    verify_program,
)
from repro.workloads import get_workload

from tests.support import call_program, diamond_program, figure3_loop_program


def structurally_equal(a, b) -> bool:
    if a.names != b.names:
        return False
    for name in a.names:
        pa, pb = a.procedure(name), b.procedure(name)
        if pa.params != pb.params or pa.labels != pb.labels:
            return False
        for label in pa.labels:
            ia = pa.block(label).instructions
            ib = pb.block(label).instructions
            if len(ia) != len(ib):
                return False
            if not all(x.same_operation(y) for x, y in zip(ia, ib)):
                return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize(
        "program_factory",
        [diamond_program, call_program, figure3_loop_program],
        ids=["diamond", "calls", "figure3"],
    )
    def test_builder_programs(self, program_factory):
        original = program_factory()
        parsed = parse_program(format_program(original))
        assert structurally_equal(original, parsed)
        assert verify_program(parsed) == []

    @pytest.mark.parametrize("name", ["alt", "wc", "gcc", "li", "m88k"])
    def test_workload_programs(self, name):
        original = get_workload(name).fresh_program()
        parsed = parse_program(format_program(original))
        assert structurally_equal(original, parsed)

    def test_parsed_program_executes_identically(self):
        original = compile_source(
            "func f(a) { return a * a + 1; }"
            "func main() { print(f(read())); }"
        )
        parsed = parse_program(format_program(original))
        for tape in ([3], [0], [12]):
            assert (
                run_program(parsed, input_tape=tape).output
                == run_program(original, input_tape=tape).output
            )

    def test_double_round_trip_fixpoint(self):
        original = diamond_program()
        once = format_program(original)
        twice = format_program(parse_program(once))
        assert once == twice


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AsmParseError):
            parse_program("func main() {\nentry:\n  frobnicate v0\n}")

    def test_stray_brace(self):
        with pytest.raises(AsmParseError):
            parse_program("}")

    def test_instruction_outside_block(self):
        with pytest.raises(AsmParseError):
            parse_program("func main() {\n  li v0, 1\n}")

    def test_unterminated_function(self):
        with pytest.raises(AsmParseError):
            parse_program("func main() {\nentry:\n  ret")

    def test_bad_parameter(self):
        with pytest.raises(AsmParseError):
            parse_program("func main(x) {\nentry:\n  ret\n}")

    def test_missing_dest(self):
        with pytest.raises(AsmParseError):
            parse_program("func main() {\nentry:\n  li 5\n  ret\n}")

    def test_destless_call_with_args_round_trips(self):
        from repro.ir import FunctionBuilder, build_program

        callee = FunctionBuilder("sink", num_params=2)
        callee.block("entry").ret()
        fb = FunctionBuilder("main")
        b = fb.block("entry")
        x, y = fb.regs(2)
        b.li(x, 1)
        b.li(y, 2)
        b.call("sink", [x, y], dest=None)
        b.ret()
        original = build_program(fb, callee)
        from repro.ir import format_program, parse_program

        parsed = parse_program(format_program(original))
        call = parsed.procedure("main").block("entry").instructions[2]
        assert call.dest is None
        assert call.srcs == (x, y)
        assert call.callee == "sink"

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program(
            """
            // a comment
            func main() {
            entry:
              li v0, 7   // trailing comment
              print v0
              ret
            }
            """
        )
        result = run_program(program)
        assert result.output == [7]
