"""Unit tests for the virtual ISA."""

import pytest

from repro.ir import Instruction, Opcode, format_instruction
from repro.ir import instructions as ins


class TestFactories:
    def test_li(self):
        i = ins.li(3, 42)
        assert i.opcode is Opcode.LI
        assert i.dest == 3
        assert i.imm == 42
        assert i.srcs == ()

    def test_mov(self):
        i = ins.mov(1, 2)
        assert i.srcs == (2,)
        assert i.dest == 1

    def test_binop_rejects_non_binary(self):
        with pytest.raises(ValueError):
            ins.binop(Opcode.NEG, 0, 1, 2)

    def test_unop_rejects_non_unary(self):
        with pytest.raises(ValueError):
            ins.unop(Opcode.ADD, 0, 1)

    def test_store_has_no_dest(self):
        i = ins.store(1, 2)
        assert i.dest is None
        assert i.srcs == (1, 2)

    def test_br_targets(self):
        i = ins.br(0, "yes", "no")
        assert i.targets == ("yes", "no")

    def test_mbr_requires_two_targets(self):
        with pytest.raises(ValueError):
            ins.mbr(0, ("only",))

    def test_call_operands(self):
        i = ins.call("f", (1, 2), 9)
        assert i.callee == "f"
        assert i.srcs == (1, 2)
        assert i.dest == 9

    def test_ret_value_optional(self):
        assert ins.ret().srcs == ()
        assert ins.ret(4).srcs == (4,)


class TestProperties:
    def test_branches_are_control_and_terminators(self):
        br = ins.br(0, "a", "b")
        assert br.is_branch and br.is_control and br.is_terminator

    def test_call_is_control_but_not_terminator(self):
        c = ins.call("f", (), None)
        assert c.is_control
        assert not c.is_terminator
        assert c.has_side_effects

    def test_jmp_is_not_a_branch(self):
        j = ins.jmp("a")
        assert j.is_terminator and j.is_control
        assert not j.is_branch

    def test_load_faults_but_load_s_does_not(self):
        assert ins.load(0, 1).may_fault
        assert not ins.load_s(0, 1).may_fault
        assert ins.load_s(0, 1).is_pure

    def test_div_may_fault(self):
        assert ins.binop(Opcode.DIV, 0, 1, 2).may_fault

    def test_pure_ops_have_no_side_effects(self):
        add = ins.binop(Opcode.ADD, 0, 1, 2)
        assert add.is_pure
        assert not add.has_side_effects

    def test_read_has_side_effects(self):
        assert ins.read(0).has_side_effects
        assert not ins.read(0).is_pure


class TestIdentitySemantics:
    def test_structurally_equal_instructions_are_distinct(self):
        a = ins.li(0, 1)
        b = ins.li(0, 1)
        assert a is not b
        assert a != b  # identity equality
        assert a.same_operation(b)

    def test_copy_is_fresh_object_same_operation(self):
        a = ins.br(3, "x", "y")
        b = a.copy()
        assert b is not a
        assert a.same_operation(b)


class TestFormatting:
    def test_format_li(self):
        assert format_instruction(ins.li(2, 7)) == "li v2, 7"

    def test_format_branch(self):
        assert format_instruction(ins.br(1, "t", "f")) == "br v1, t, f"

    def test_format_call(self):
        text = format_instruction(ins.call("f", (1,), 0))
        assert text == "call v0, v1, @f"

    def test_format_nop(self):
        assert format_instruction(ins.nop()) == "nop"
