"""Unit tests for blocks, procedures, and programs."""

import pytest

from repro.ir import (
    BasicBlock,
    FunctionBuilder,
    IRError,
    Procedure,
    Program,
    reachable_labels,
    remove_unreachable_blocks,
)
from repro.ir import instructions as ins

from tests.support import diamond_program


def two_block_proc() -> Procedure:
    proc = Procedure("f")
    b0 = proc.add_block(BasicBlock("entry"))
    b0.append(ins.li(0, 1))
    b0.append(ins.jmp("exit"))
    b1 = proc.add_block(BasicBlock("exit"))
    b1.append(ins.ret(0))
    return proc


class TestBasicBlock:
    def test_terminator(self):
        b = BasicBlock("x", [ins.li(0, 1), ins.ret(0)])
        assert b.terminator.opcode.value == "ret"
        assert [i.opcode.value for i in b.body] == ["li"]

    def test_unterminated_block_raises(self):
        b = BasicBlock("x", [ins.li(0, 1)])
        with pytest.raises(IRError):
            b.terminator

    def test_append_after_terminator_raises(self):
        b = BasicBlock("x", [ins.ret()])
        with pytest.raises(IRError):
            b.append(ins.nop())

    def test_successors_deduplicate(self):
        b = BasicBlock("x", [ins.br(0, "same", "same")])
        assert b.successors() == ("same",)

    def test_degenerate_branch_is_not_counted_as_branching(self):
        b = BasicBlock("x", [ins.br(0, "same", "same")])
        assert not b.ends_in_branch

    def test_real_branch_counts(self):
        b = BasicBlock("x", [ins.br(0, "a", "b")])
        assert b.ends_in_branch

    def test_copy_is_deep(self):
        b = BasicBlock("x", [ins.li(0, 1), ins.ret(0)])
        c = b.copy("y")
        assert c.label == "y"
        assert c.instructions[0] is not b.instructions[0]
        assert c.instructions[0].same_operation(b.instructions[0])


class TestProcedure:
    def test_entry_is_first_block(self):
        proc = two_block_proc()
        assert proc.entry_label == "entry"
        assert proc.entry.label == "entry"

    def test_duplicate_label_raises(self):
        proc = two_block_proc()
        with pytest.raises(IRError):
            proc.add_block(BasicBlock("entry"))

    def test_missing_block_raises(self):
        proc = two_block_proc()
        with pytest.raises(IRError):
            proc.block("nope")

    def test_edges_and_predecessors(self):
        proc = two_block_proc()
        assert proc.edges() == [("entry", "exit")]
        assert proc.predecessors()["exit"] == ["entry"]

    def test_fresh_label_avoids_collisions(self):
        proc = Procedure("f")
        proc.add_block(BasicBlock("b0"))
        label = proc.fresh_label("b")
        assert label != "b0"

    def test_fresh_reg_monotonic(self):
        proc = Procedure("f", params=(0, 1))
        assert proc.fresh_reg() == 2
        assert proc.fresh_reg() == 3

    def test_note_reg_bumps_counter(self):
        proc = Procedure("f")
        proc.note_reg(10)
        assert proc.fresh_reg() == 11

    def test_reorder_requires_permutation(self):
        proc = two_block_proc()
        with pytest.raises(IRError):
            proc.reorder(["entry"])

    def test_reorder_keeps_entry_first(self):
        proc = two_block_proc()
        with pytest.raises(IRError):
            proc.reorder(["exit", "entry"])

    def test_copy_is_deep(self):
        proc = two_block_proc()
        clone = proc.copy()
        clone.block("entry").instructions[0].imm = 99
        assert proc.block("entry").instructions[0].imm == 1


class TestProgram:
    def test_lookup(self):
        prog = diamond_program()
        assert prog.has_procedure("main")
        assert not prog.has_procedure("nope")
        with pytest.raises(IRError):
            prog.procedure("nope")

    def test_duplicate_procedure_raises(self):
        prog = Program()
        prog.add(Procedure("f"))
        with pytest.raises(IRError):
            prog.add(Procedure("f"))

    def test_instruction_count(self):
        prog = diamond_program()
        manual = sum(
            len(b) for p in prog.procedures() for b in p.blocks()
        )
        assert prog.instruction_count() == manual


class TestReachability:
    def test_reachable_is_rpo(self):
        prog = diamond_program()
        labels = reachable_labels(prog.procedure("main"))
        assert labels[0] == "A"
        assert set(labels) == set(prog.procedure("main").labels)

    def test_remove_unreachable(self):
        fb = FunctionBuilder("main")
        fb.block("entry").ret()
        dead = fb.block("dead")
        dead.ret()
        proc = fb.proc
        removed = remove_unreachable_blocks(proc)
        assert removed == ["dead"]
        assert list(proc.labels) == ["entry"]
