"""Whole-toolchain determinism across hash seeds (ISSUE 3 satellite).

Python randomizes ``str`` hashing per process, so any compiler stage that
lets set/dict iteration order leak into its output produces different
scheduled code from run to run.  The probe script prints generated fuzz
programs, experiment statistics, and every scheduled instruction; its
stdout must be byte-identical under different ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PROBE = Path(__file__).resolve().parent / "determinism_probe.py"


def _run_probe(hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(PROBE)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_output_identical_across_hash_seeds():
    baseline = _run_probe("0")
    assert b"cycles=" in baseline  # the probe actually ran experiments
    assert baseline == _run_probe("31337")
