"""Profile-guided inliner tests: semantics, provenance, determinism,
budget/recursion guards, and call-graph pruning."""

from repro.formation import InlineConfig, inline_program, scheme
from repro.interp import run_program
from repro.ir import FunctionBuilder, build_program, verify_program
from repro.pipeline import run_scheme
from repro.profiling import collect_profiles
from repro.trace.provenance import require_provenance
from repro.trace.tracer import Tracer

from tests.support import call_program

TAPE = [6, 10, -1]

#: Tiny fixture programs blow through the default 1.6x growth ratio on
#: the first splice; give them room so the logic under test is reached.
ROOMY = InlineConfig(max_growth_ratio=4.0)


def two_site_program():
    """main calls ``square`` from two different blocks (same callee twice)."""
    sq = FunctionBuilder("square", num_params=1)
    sb = sq.block("entry")
    (p,) = sq.params
    r = sq.reg()
    sb.mul(r, p, p)
    sb.ret(r)

    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    second = fb.block("second")
    a = fb.reg()
    b = fb.reg()
    s1 = fb.reg()
    s2 = fb.reg()
    t = fb.reg()
    entry.read(a)
    entry.call("square", [a], dest=s1)
    entry.print_(s1)
    entry.jmp("second")
    second.read(b)
    second.call("square", [b], dest=s2)
    second.add(t, s1, s2)
    second.print_(t)
    second.ret(t)
    return build_program(fb, sq)


def recursive_program():
    """main calls ``fact``, which calls itself (direct recursion)."""
    fa = FunctionBuilder("fact", num_params=1)
    entry = fa.block("entry")
    base = fa.block("base")
    rec = fa.block("rec")
    (n,) = fa.params
    one = fa.reg()
    t = fa.reg()
    m = fa.reg()
    sub = fa.reg()
    entry.li(one, 1)
    entry.cmplt(t, n, one)
    entry.br(t, "base", "rec")
    base.ret(one)
    rec.sub(sub, n, one)
    rec.call("fact", [sub], dest=m)
    rec.mul(m, n, m)
    rec.ret(m)

    fb = FunctionBuilder("main")
    b = fb.block("entry")
    x = fb.reg()
    r = fb.reg()
    b.read(x)
    b.call("fact", [x], dest=r)
    b.print_(r)
    b.ret(r)
    return build_program(fb, fa)


def inline_with_profile(program, tape, config=None, tracer=None):
    bundle = collect_profiles(program, input_tape=tape)
    return inline_program(program, bundle.edge, config, tracer=tracer)


class TestInlineSemantics:
    def test_output_preserved(self):
        program = call_program()
        tape = [5]
        inlined, stats = inline_with_profile(program, tape)
        assert stats.sites_inlined == 1
        verify_program(inlined)
        want = run_program(program, input_tape=tape)
        got = run_program(inlined, input_tape=tape)
        assert got.output == want.output
        assert got.return_value == want.return_value

    def test_two_sites_both_inlined(self):
        program = two_site_program()
        inlined, stats = inline_with_profile(program, TAPE, ROOMY)
        assert stats.sites_inlined == 2
        assert stats.procs_inlined == 1
        verify_program(inlined)
        want = run_program(program, input_tape=TAPE)
        got = run_program(inlined, input_tape=TAPE)
        assert got.output == want.output

    def test_recursion_guard(self):
        program = recursive_program()
        tape = [5]
        inlined, stats = inline_with_profile(program, tape, ROOMY)
        # main's call to fact inlines once; the cloned self-call must not
        # keep unrolling the recursion (its lineage contains "fact").
        assert stats.sites_inlined == 1
        # fact is still called from the clone, so pruning keeps it.
        assert "fact" in inlined.names
        want = run_program(program, input_tape=tape)
        got = run_program(inlined, input_tape=tape)
        assert got.output == want.output

    def test_untouched_program_returned_on_no_candidates(self):
        program = call_program()
        config = InlineConfig(max_growth_ratio=1.0)
        inlined, stats = inline_with_profile(program, [5], config)
        assert stats.sites_inlined == 0
        assert inlined.instruction_count() == program.instruction_count()

    def test_prune_uncalled(self):
        program = call_program()
        inlined, stats = inline_with_profile(program, [5])
        assert stats.procs_pruned == 1
        assert list(inlined.names) == ["main"]


class TestInlineProvenance:
    def test_same_callee_two_sites_distinct_ids(self):
        """Regression: both clones of ``square`` must resolve to their own
        re-stamped source instructions — one shared id per original callee
        op would make the provenance check ambiguous."""
        program = two_site_program()
        outcome = run_scheme(
            program,
            "P4i",
            TAPE,
            TAPE,
            config=scheme("P4i", max_growth_ratio=4.0),
            tracer=Tracer(),
        )
        source = outcome.formation.source_program
        assert source is not None, "P4i should rewrite the source program"
        require_provenance(source, outcome.compiled)
        origins = [
            instr.origin
            for proc in source.procedures()
            for block in proc.blocks()
            for instr in block
        ]
        assert len(origins) == len(set(origins))

    def test_p4i_matches_p4_output(self):
        program = two_site_program()
        base = run_scheme(program, "P4", TAPE, TAPE)
        inl = run_scheme(program, "P4i", TAPE, TAPE)
        assert inl.result.output == base.result.output
        assert inl.result.return_value == base.result.return_value


class TestInlineDeterminism:
    def test_tie_break_is_source_order(self):
        """Equal-heat sites must inline in (caller, block, index) order,
        never dict/container order."""
        program = two_site_program()
        tracer = Tracer()
        inline_with_profile(program, TAPE, ROOMY, tracer=tracer)
        inlined_sites = [
            (d["block"], d["index"])
            for d in tracer.decisions
            if d["kind"] == "inline" and d["action"] == "inline"
        ]
        assert inlined_sites == sorted(inlined_sites)

    def test_repeat_runs_identical(self):
        program = two_site_program()
        first, _ = inline_with_profile(program, TAPE, ROOMY)
        second, _ = inline_with_profile(program, TAPE, ROOMY)
        assert [
            (proc.name, proc.labels) for proc in first.procedures()
        ] == [(proc.name, proc.labels) for proc in second.procedures()]
