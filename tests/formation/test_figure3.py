"""Figure 3 pinned down: the unrolling shapes the paper draws.

The loop has arms B (common) and C (every fourth iteration, or phased).
Classical unrolling can only repeat the B body; path-based enlargement
reproduces the observed multi-iteration pattern.
"""

from repro.formation import form_superblocks, scheme
from repro.profiling import collect_profiles

from tests.support import figure3_loop_program


def arm_sequence(result, sb):
    """The B/C arm pattern of one superblock, in trace order."""
    arms = []
    for label in sb.labels:
        origin = result.origin_of("main", label)
        if origin in ("B", "C"):
            arms.append(origin)
    return arms


def formed(name, tape):
    program = figure3_loop_program()
    bundle = collect_profiles(program, input_tape=tape)
    return form_superblocks(
        program,
        scheme(name),
        edge_profile=bundle.edge,
        path_profile=bundle.path,
    )


class TestFigure3a:
    """Classical unrolling: every body predicts the common arm."""

    def test_m4_unrolls_only_b(self):
        result = formed("M4", [24, 0])
        loop = max(result.superblocks["main"], key=lambda s: s.size_blocks)
        arms = arm_sequence(result, loop)
        assert arms == ["B"] * len(arms)
        assert len(arms) == 4  # unroll factor


class TestFigure3b:
    """Path1 (TTTF): the path-formed loop inlines C at its position."""

    def test_p4_inlines_the_fourth_iteration(self):
        result = formed("P4", [24, 0])
        loops = [sb for sb in result.superblocks["main"] if sb.is_loop]
        assert loops
        arms = arm_sequence(result, loops[0])
        assert "C" in arms, "the rare arm belongs inside the region"
        assert arms.count("B") >= 3
        # The C iteration appears at the pattern's observed position:
        # three B iterations precede it.
        assert arms[:4] == ["B", "B", "B", "C"]


class TestFigure3c:
    """Path2 (phased): two specialized loop bodies emerge."""

    def test_p4_builds_b_and_c_specialized_regions(self):
        result = formed("P4", [24, 1])
        big = [
            arm_sequence(result, sb)
            for sb in result.superblocks["main"]
            if sb.size_blocks >= 8
        ]
        pure_b = [a for a in big if a and set(a) == {"B"}]
        pure_c = [a for a in big if a and set(a) == {"C"}]
        assert pure_b, "a B-specialized unrolled region must exist"
        assert pure_c, "a C-specialized unrolled region must exist"

    def test_m4_cannot_specialize_the_c_phase(self):
        result = formed("M4", [24, 1])
        big = [
            arm_sequence(result, sb)
            for sb in result.superblocks["main"]
            if sb.size_blocks >= 8
        ]
        pure_c = [a for a in big if a and set(a) == {"C"}]
        assert not pure_c, "edge profiles cannot see the phase change"
