"""Tests for trace selection (mutual-most-likely and path-based)."""

from repro.formation import (
    select_traces_basic_block,
    select_traces_mutual_most_likely,
    select_traces_path,
)
from repro.profiling import collect_profiles

from tests.support import diamond_program, figure3_loop_program


def profiles(program, tape):
    bundle = collect_profiles(program, input_tape=tape)
    return bundle.edge, bundle.path


class TestCommonRules:
    def test_partition_covers_all_blocks_exactly_once(self):
        program = diamond_program()
        edge, path = profiles(program, [10, 11, 60] * 5 + [-1])
        proc = program.procedure("main")
        for traces in (
            select_traces_mutual_most_likely(proc, edge),
            select_traces_path(proc, path),
            select_traces_basic_block(proc),
        ):
            flat = [label for t in traces for label in t]
            assert sorted(flat) == sorted(proc.labels)

    def test_no_back_edge_inside_any_trace(self):
        program = figure3_loop_program()
        edge, path = profiles(program, [24, 0])
        proc = program.procedure("main")
        from repro.analysis import loop_headers

        headers = loop_headers(proc)
        for traces in (
            select_traces_mutual_most_likely(proc, edge),
            select_traces_path(proc, path),
        ):
            for t in traces:
                # Loop headers may only appear as trace heads.
                for label in t[1:]:
                    assert label not in headers

    def test_entry_block_is_always_a_trace_head(self):
        program = figure3_loop_program()
        edge, path = profiles(program, [24, 0])
        proc = program.procedure("main")
        for traces in (
            select_traces_mutual_most_likely(proc, edge),
            select_traces_path(proc, path),
        ):
            for t in traces:
                assert proc.entry_label not in t[1:]

    def test_cold_blocks_become_singletons(self):
        program = diamond_program()
        # Never take X: it stays unexecuted except... use only words < 50.
        edge, path = profiles(program, [10, 10, -1])
        proc = program.procedure("main")
        for traces in (
            select_traces_mutual_most_likely(proc, edge),
            select_traces_path(proc, path),
        ):
            x_trace = next(t for t in traces if "X" in t)
            assert x_trace == ["X"]


class TestMutualMostLikely:
    def test_dominant_path_forms_one_trace(self):
        program = diamond_program()
        edge, _ = profiles(program, [10, 10, 10, 10, -1])
        proc = program.procedure("main")
        traces = select_traces_mutual_most_likely(proc, edge)
        main_trace = next(t for t in traces if t[0] == "A")
        # A -> A_test -> B -> C is the dominant chain.
        assert main_trace[:4] == ["A", "A_test", "B", "C"]

    def test_mutuality_required(self):
        # B's most likely successor is C, but C's most likely predecessor is
        # X in this run, so B's trace must not claim C.
        from repro.ir import FunctionBuilder, Opcode, build_program
        from repro.interp import run_program
        from repro.profiling import EdgeProfiler

        fb = FunctionBuilder("main")
        entry = fb.block("entry")
        top = fb.block("top")
        b = fb.block("B")
        x = fb.block("X")
        c = fb.block("C")
        done = fb.block("done")
        n, t, one, lim, m = fb.regs(5)
        # loop: first 10 iterations go through B, next 30 through X; both
        # fall into C.
        entry.li(n, 0)
        entry.jmp("top")
        top.li(one, 1)
        top.add(n, n, one)
        top.li(lim, 10)
        top.alu(Opcode.CMPLE, t, n, lim)
        top.br(t, "B", "X")
        b.jmp("C")
        x.jmp("C")
        c.li(m, 40)
        c.alu(Opcode.CMPLT, t, n, m)
        c.br(t, "top", "done")
        done.ret()
        program = build_program(fb)
        profiler = EdgeProfiler()
        run_program(program, observer=profiler)
        profile = profiler.finalize()

        proc = program.procedure("main")
        traces = select_traces_mutual_most_likely(proc, profile)
        b_trace = next(t_ for t_ in traces if "B" in t_)
        assert "C" not in b_trace  # C's best predecessor is X (30 vs 10)


class TestPathSelection:
    def test_path_seed_order_is_frequency(self):
        program = diamond_program()
        _, path = profiles(program, [10] * 8 + [-1])
        proc = program.procedure("main")
        traces = select_traces_path(proc, path)
        # The hottest block (A) seeds the first trace.
        assert traces[0][0] == "A"

    def test_path_growth_follows_exact_frequencies(self):
        program = diamond_program()
        _, path = profiles(program, [10, 10, 10, 60] * 10 + [-1])
        proc = program.procedure("main")
        traces = select_traces_path(proc, path)
        main_trace = next(t for t in traces if t[0] == "A")
        assert main_trace[:4] == ["A", "A_test", "B", "C"]

    def test_path_selection_stops_on_unseen_extension(self):
        program = diamond_program()
        _, path = profiles(program, [-1])  # immediate exit: only A, done run
        proc = program.procedure("main")
        traces = select_traces_path(proc, path)
        a_trace = next(t for t in traces if t[0] == "A")
        assert a_trace == ["A", "done"] or a_trace == ["A"]
