"""End-to-end formation tests: schemes, invariants, semantic equivalence.

The decisive property: formation only duplicates and rewires code, so the
transformed program must produce byte-identical output on every input.
"""

import pytest

from repro.formation import (
    FormationConfig,
    form_superblocks,
    scheme,
    verify_formation,
)
from repro.frontend import compile_source
from repro.interp import run_program
from repro.ir import verify_program
from repro.profiling import collect_profiles

from tests.support import (
    call_program,
    diamond_program,
    figure3_loop_program,
)

SCHEMES = ["BB", "M4", "M16", "P4", "P4e"]

LOOPY_SRC = """
func weight(x) {
    if (x % 3 == 0) { return 2; }
    return 1;
}
func main() {
    var total = 0;
    var w = read();
    while (w >= 0) {
        if (w < 50) {
            total = total + weight(w);
        } else {
            total = total - 1;
        }
        w = read();
    }
    print(total);
}
"""


def form(program, name, tape):
    bundle = collect_profiles(program, input_tape=tape)
    return form_superblocks(
        program, scheme(name), edge_profile=bundle.edge, path_profile=bundle.path
    )


class TestSchemes:
    def test_preset_lookup(self):
        assert scheme("M4").classic.unroll_factor == 4
        assert scheme("M16").classic.unroll_factor == 16
        assert scheme("P4").path.max_loop_heads == 4
        assert scheme("P4e").path.stop_nonloop_at_first_head
        assert not scheme("P4").path.stop_nonloop_at_first_head
        assert scheme("BB").kind == "bb"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            scheme("Z9")

    def test_scheme_overrides(self):
        cfg = scheme("P4", max_instructions=64, completion_threshold=0.9)
        assert cfg.path.max_instructions == 64
        assert cfg.path.completion_threshold == 0.9

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError):
            scheme("P4", no_such_knob=1)

    def test_missing_profile_rejected(self):
        program = diamond_program()
        with pytest.raises(ValueError):
            form_superblocks(program, scheme("M4"))
        with pytest.raises(ValueError):
            form_superblocks(program, scheme("P4"))


class TestInvariants:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_formation_invariants_hold(self, name):
        program = figure3_loop_program()
        result = form(program, name, [24, 0])
        assert verify_formation(result) == []
        assert verify_program(result.program) == []

    @pytest.mark.parametrize("name", SCHEMES)
    def test_input_program_untouched(self, name):
        program = diamond_program()
        before = program.instruction_count()
        labels_before = list(program.procedure("main").labels)
        form(program, name, [10, 11, 60] * 4 + [-1])
        assert program.instruction_count() == before
        assert list(program.procedure("main").labels) == labels_before

    def test_bb_scheme_is_singletons(self):
        program = diamond_program()
        result = form(program, "BB", [10, -1])
        for sb in result.superblocks["main"]:
            assert sb.size_blocks == 1


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_diamond(self, name):
        program = diamond_program()
        result = form(program, name, [10, 10, 10, 60] * 6 + [-1])
        for tape in ([10, 11, 60, -1], [-1], [11] * 9 + [-1], [60, 10, -1]):
            expected = run_program(diamond_program(), input_tape=tape)
            actual = run_program(result.program, input_tape=tape)
            assert actual.output == expected.output
            assert actual.return_value == expected.return_value

    @pytest.mark.parametrize("name", SCHEMES)
    def test_figure3_loop(self, name):
        program = figure3_loop_program()
        result = form(program, name, [24, 0])
        for tape in ([8, 0], [9, 1], [1, 0], [30, 1]):
            expected = run_program(figure3_loop_program(), input_tape=tape)
            actual = run_program(result.program, input_tape=tape)
            assert actual.output == expected.output

    @pytest.mark.parametrize("name", SCHEMES)
    def test_calls(self, name):
        program = call_program()
        result = form(program, name, [6])
        for tape in ([0], [1], [5]):
            expected = run_program(call_program(), input_tape=tape)
            actual = run_program(result.program, input_tape=tape)
            assert actual.output == expected.output

    @pytest.mark.parametrize("name", SCHEMES)
    def test_minic_program(self, name):
        program = compile_source(LOOPY_SRC)
        train = [3, 6, 9, 55, 12, 7, 80, 1, 2, 3] * 3 + [-1]
        result = form(program, name, train)
        for tape in ([-1], [3, -1], [55, 60, 3, 9, -1], list(range(20)) + [-1]):
            expected = run_program(compile_source(LOOPY_SRC), input_tape=tape)
            actual = run_program(result.program, input_tape=tape)
            assert actual.output == expected.output


class TestGrowthShapes:
    def test_m16_grows_at_least_as_much_as_m4(self):
        program = figure3_loop_program()
        tape = [40, 0]
        m4 = form(program, "M4", tape)
        m16 = form(program, "M16", tape)
        assert (
            m16.program.instruction_count()
            >= m4.program.instruction_count()
        )

    def test_p4e_grows_no_more_than_p4(self):
        program = compile_source(LOOPY_SRC)
        tape = [3, 6, 9, 55, 12, 7, 80, 1, 2, 3] * 3 + [-1]
        p4 = form(program, "P4", tape)
        p4e = form(program, "P4e", tape)
        assert (
            p4e.program.instruction_count()
            <= p4.program.instruction_count()
        )

    def test_enlargement_happens_on_hot_loop(self):
        program = figure3_loop_program()
        result = form(program, "P4", [40, 0])
        baseline = form(program, "BB", [40, 0])
        assert (
            result.program.instruction_count()
            > baseline.program.instruction_count()
        )

    def test_superblock_loops_detected(self):
        program = figure3_loop_program()
        result = form(program, "P4", [40, 0])
        loops = [sb for sb in result.superblocks["main"] if sb.is_loop]
        assert loops, "the hot loop should yield at least one superblock loop"
