"""Tests for tail duplication, chain copying, and side-entrance fixup."""

from repro.formation import (
    duplicate_chain,
    remove_side_entrances,
    retarget,
    tail_duplicate,
)
from repro.interp import run_program
from repro.ir import FunctionBuilder, Opcode, build_program, verify_program

from tests.support import diamond_program


class TestRetarget:
    def test_replaces_all_occurrences(self):
        from repro.ir import instructions as ins

        br = ins.br(0, "x", "x")
        retarget(br, "x", "y")
        assert br.targets == ("y", "y")

    def test_leaves_other_targets(self):
        from repro.ir import instructions as ins

        m = ins.mbr(0, ("a", "b", "a", "c"))
        retarget(m, "a", "z")
        assert m.targets == ("z", "b", "z", "c")


class TestDuplicateChain:
    def test_chain_is_internally_connected(self):
        program = diamond_program()
        proc = program.procedure("main")
        origin = {}
        chain = duplicate_chain(proc, ["A_test", "B"], origin)
        assert len(chain) == 2
        first, second = chain
        # first's successor B is rewired to the copy.
        assert second in proc.block(first).successors()
        assert "B" not in proc.block(first).successors()
        # second keeps B's original exits.
        assert set(proc.block(second).successors()) == {"Y", "C"}

    def test_origin_mapping(self):
        program = diamond_program()
        proc = program.procedure("main")
        origin = {}
        chain = duplicate_chain(proc, ["B"], origin)
        assert origin[chain[0]] == "B"
        # Copies of copies map to the root original.
        chain2 = duplicate_chain(proc, [chain[0]], origin)
        assert origin[chain2[0]] == "B"

    def test_instructions_are_fresh_objects(self):
        program = diamond_program()
        proc = program.procedure("main")
        chain = duplicate_chain(proc, ["B"], {})
        copy = proc.block(chain[0])
        original = proc.block("B")
        assert copy.instructions[0] is not original.instructions[0]


def side_entrance_program():
    """main: entry branches to P or Q; both meet at M which flows to T.

    The trace [P, M, T] has a side entrance at M (from Q).
    """
    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    p = fb.block("P")
    q = fb.block("Q")
    m = fb.block("M")
    t = fb.block("T")
    w, tag = fb.regs(2)
    entry.read(w)
    entry.br(w, "P", "Q")
    p.li(tag, 1)
    p.jmp("M")
    q.li(tag, 2)
    q.jmp("M")
    m.print_(tag)
    m.jmp("T")
    t.print_(w)
    t.ret()
    return build_program(fb)


class TestTailDuplication:
    def test_removes_side_entrance(self):
        program = side_entrance_program()
        proc = program.procedure("main")
        origin = {}
        sbs = tail_duplicate(proc, [["entry"], ["P", "M", "T"], ["Q"]], origin)
        # A duplicate chain for [M, T] was created.
        assert len(sbs) == 4
        chain = sbs[-1]
        assert [origin[label] for label in chain] == ["M", "T"]
        # Q now jumps to the copy, not to M.
        assert proc.block("Q").successors() == (chain[0],)
        # P still jumps to the original M.
        assert proc.block("P").successors() == ("M",)
        assert verify_program(program) == []

    def test_semantics_preserved(self):
        program = side_entrance_program()
        reference = [
            run_program(side_entrance_program(), input_tape=[v]).output
            for v in (0, 1)
        ]
        proc = program.procedure("main")
        tail_duplicate(proc, [["entry"], ["P", "M", "T"], ["Q"]], {})
        for v, expected in zip((0, 1), reference):
            assert run_program(program, input_tape=[v]).output == expected

    def test_no_duplication_when_no_side_entrance(self):
        program = side_entrance_program()
        proc = program.procedure("main")
        before = len(list(proc.labels))
        sbs = tail_duplicate(
            proc, [["entry"], ["P"], ["Q"], ["M", "T"]], {}
        )
        assert len(list(proc.labels)) == before
        assert len(sbs) == 4


class TestRemoveSideEntrances:
    def test_fixup_restores_single_entry(self):
        program = side_entrance_program()
        proc = program.procedure("main")
        origin = {}
        sbs = [["entry"], ["P", "M", "T"], ["Q"]]
        fixed = remove_side_entrances(proc, sbs, origin)
        heads = {sb[0] for sb in fixed}
        # After fixup, every branch target is a head.
        for block in proc.blocks():
            for succ in block.successors():
                member = next(sb for sb in fixed if succ in sb)
                assert succ == member[0] or (
                    succ == member[member.index(block.label) + 1]
                    if block.label in member
                    else False
                )
        assert verify_program(program) == []

    def test_fixup_idempotent_on_clean_program(self):
        program = side_entrance_program()
        proc = program.procedure("main")
        sbs = [["entry"], ["P"], ["Q"], ["M", "T"]]
        before = len(list(proc.labels))
        fixed = remove_side_entrances(proc, sbs, {})
        assert len(fixed) == 4
        assert len(list(proc.labels)) == before
