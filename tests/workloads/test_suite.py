"""Tests for the benchmark workload suite."""

import pytest

from repro.interp import run_program
from repro.ir import verify_program
from repro.workloads import (
    MICRO_NAMES,
    SPEC_NAMES,
    SUITE_ORDER,
    all_workloads,
    get_workload,
    workload_map,
)

SMALL = 0.12


class TestSuiteShape:
    def test_fourteen_workloads(self):
        assert len(all_workloads()) == 14
        assert len(SUITE_ORDER) == 14

    def test_table1_order(self):
        assert [w.name for w in all_workloads()] == SUITE_ORDER

    def test_micro_and_spec_partition(self):
        assert set(MICRO_NAMES) | set(SPEC_NAMES) == set(SUITE_ORDER)
        assert not set(MICRO_NAMES) & set(SPEC_NAMES)

    def test_lookup(self):
        assert get_workload("gcc").name == "gcc"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_every_workload_documents_substitution(self):
        for w in all_workloads():
            assert w.notes, f"{w.name} lacks substitution notes"

    def test_categories(self):
        categories = {w.name: w.category for w in all_workloads()}
        assert categories["alt"] == "micro"
        assert categories["com"] == "spec92"
        assert categories["gcc"] == "spec95"


class TestPrograms:
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_compiles_and_verifies(self, name):
        program = get_workload(name).program()
        assert verify_program(program) == []

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_runs_and_produces_output(self, name):
        w = get_workload(name)
        result = run_program(w.program(), input_tape=w.test_tape(SMALL))
        assert result.output, f"{name} printed nothing"
        assert result.instructions > 100

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_deterministic_tapes(self, name):
        w = get_workload(name)
        assert w.train_tape(SMALL) == w.train_tape(SMALL)
        assert w.test_tape(SMALL) == w.test_tape(SMALL)

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_train_differs_from_test(self, name):
        w = get_workload(name)
        assert w.train_tape(SMALL) != w.test_tape(SMALL)

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_scale_shrinks_work(self, name):
        w = get_workload(name)
        small = run_program(w.program(), input_tape=w.test_tape(0.05))
        big = run_program(w.program(), input_tape=w.test_tape(0.4))
        assert small.instructions < big.instructions

    def test_program_cache(self):
        w = get_workload("alt")
        assert w.program() is w.program()
        assert w.fresh_program() is not w.program()


class TestWorkloadSemantics:
    def test_wc_counts(self):
        w = get_workload("wc")
        text = "ab cd\nef "
        tape = [ord(c) for c in text] + [-1]
        result = run_program(w.program(), input_tape=tape)
        assert result.output == [1, 3, len(text)]

    def test_alt_pattern_is_tttf(self):
        w = get_workload("alt")
        result = run_program(w.program(), input_tape=[8])
        # i in 0..7: light for i%4 != 3 -> 0+1+2+4+5+6=18; heavy i=3,7
        assert result.output == [18, (3 * 3 - 1) + (7 * 3 - 1)]

    def test_ph_phases(self):
        w = get_workload("ph")
        result = run_program(w.program(), input_tape=[9])
        cut = 6
        first = sum(range(cut))
        second = sum(i * 3 - 1 for i in range(cut, 9))
        assert result.output == [first, second]

    def test_m88k_executes_all_fuel(self):
        w = get_workload("m88k")
        result = run_program(w.program(), input_tape=w.test_tape(0.1))
        assert result.output[0] == w.test_tape(0.1)[-1]  # executed == fuel

    def test_vortex_hits_bounded_by_lookups(self):
        w = get_workload("vortex")
        result = run_program(w.program(), input_tape=w.test_tape(0.2))
        inserts, hits, checksum = result.output
        assert inserts > 0
        assert hits >= 0

    def test_com_reconstruction_invariant(self):
        # literals + matched spans cover the whole input.
        w = get_workload("com")
        result = run_program(w.program(), input_tape=w.test_tape(0.2))
        literals, matches, checksum = result.output
        assert literals > 0 and matches > 0
