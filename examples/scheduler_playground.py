"""Look inside the compactor: renaming, speculation, and VLIW bundles.

Builds a two-block superblock with a side exit, then prints the code before
and after renaming and the final cycle-by-cycle schedule, showing which
operations the compactor hoisted above the exit (speculation).

Run:  python examples/scheduler_playground.py
"""

from repro.analysis import compute_liveness
from repro.formation.superblock import Superblock
from repro.ir import FunctionBuilder, Opcode, build_program, format_instruction
from repro.scheduling import (
    PAPER_MACHINE,
    extract_superblock_code,
    schedule_superblock,
    verify_schedule,
)
from repro.scheduling.renaming import rename_superblock


def build():
    fb = FunctionBuilder("main")
    entry = fb.block("entry")
    cold = fb.block("cold")
    hot = fb.block("hot")

    n, t, limit = fb.regs(3)
    a, b, c, d = fb.regs(4)

    entry.read(n)
    entry.li(limit, 100)
    entry.alu(Opcode.CMPGT, t, n, limit)
    entry.br(t, "cold", "hot")  # rarely taken side exit

    cold.print_(n)
    cold.ret()

    hot.li(a, 3)
    hot.mul(b, n, a)
    hot.add(c, b, n)
    hot.mul(d, c, c)
    hot.print_(d)
    hot.ret()
    return build_program(fb)


def dump(title, instructions):
    print(title)
    for i, instr in enumerate(instructions):
        print(f"  {i:2d}: {format_instruction(instr)}")
    print()


def main():
    program = build()
    proc = program.procedure("main")
    liveness = compute_liveness(proc)
    sb = Superblock("main", ["entry", "hot"])
    code = extract_superblock_code(proc, sb, liveness)

    dump("Superblock before renaming:", code.instructions)
    rename_superblock(code, proc)
    dump("After renaming (fresh destinations, materializing moves):",
         code.instructions)

    schedule = schedule_superblock(code, PAPER_MACHINE)
    assert verify_schedule(schedule) == []
    print("Schedule (8-wide, 1 control op/cycle; * = speculative):")
    for cycle, bundle in enumerate(schedule.bundles):
        ops = ", ".join(
            ("*" if op.speculative else "")
            + format_instruction(op.instr)
            for op in bundle
        )
        print(f"  cycle {cycle}: {ops}")
    print(f"\n{schedule.length} cycles for {len(schedule.ops)} operations.")


if __name__ == "__main__":
    main()
