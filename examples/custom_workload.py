"""Define your own workload and measure every scheme on it.

This example wires a new MiniC program into the same machinery the paper's
experiments use: distinct train/test inputs, all five schemes, the finite
instruction cache, and Figure-7-style superblock statistics.

Run:  python examples/custom_workload.py
"""

import random

from repro.experiments import run_workload
from repro.workloads import Workload

# A branch-history-sensitive workload: a tiny Markov text generator whose
# state transitions follow multi-step patterns (path profiles see them,
# edge profiles do not).
SOURCE = """
func main() {
    var state = 0;
    var emitted = 0;
    var checksum = 0;
    var steps = read();
    for (var i = 0; i < steps; i = i + 1) {
        var roll = read();
        if (state == 0) {
            if (roll < 70) { state = 1; } else { state = 2; }
        } else if (state == 1) {
            if (roll < 70) { state = 2; } else { state = 0; }
        } else {
            state = 0;
            emitted = emitted + 1;
        }
        checksum = checksum + state * 3 + roll % 5;
    }
    print(emitted);
    print(checksum);
}
"""


def rolls(seed, steps):
    rng = random.Random(seed)
    return [steps] + [rng.randint(0, 99) for _ in range(steps)]


MARKOV = Workload(
    name="markov",
    description="three-state Markov chain with multi-step patterns",
    category="custom",
    source=SOURCE,
    train=lambda scale: rolls(7, int(1200 * scale)),
    test=lambda scale: rolls(8, int(1500 * scale)),
)


def main():
    outcomes = run_workload(
        MARKOV, ["BB", "M4", "M16", "P4", "P4e"], with_icache=True
    )
    print("scheme   cycles  +icache  miss%   blocks/entry  size(blocks)")
    for name, outcome in outcomes.items():
        sim = outcome.result
        cached = outcome.cached_result
        print(
            f"{name:6s} {sim.cycles:8d} {cached.cycles:8d}"
            f" {cached.icache_miss_rate * 100:6.2f}"
            f" {sim.avg_blocks_per_entry:10.2f}"
            f" {sim.avg_superblock_size:12.2f}"
        )


if __name__ == "__main__":
    main()
