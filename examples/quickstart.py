"""Quickstart: compile a program, schedule it two ways, compare cycles.

Run:  python examples/quickstart.py
"""

from repro.frontend import compile_source
from repro.pipeline import run_scheme

# A MiniC program: count words whose length is a multiple of 3.
SOURCE = """
func main() {
    var count = 0;
    var length = 0;
    var c = read();
    while (c >= 0) {
        if (c == 32 || c == 10) {
            if (length > 0 && length % 3 == 0) {
                count = count + 1;
            }
            length = 0;
        } else {
            length = length + 1;
        }
        c = read();
    }
    print(count);
}
"""


def text(words):
    tape = []
    for word in words:
        tape.extend(ord(ch) for ch in word)
        tape.append(32)
    tape.append(-1)
    return tape


def main():
    program = compile_source(SOURCE)
    train = text(["alpha", "bee", "gamma", "de", "epsilon", "zig"] * 40)
    test = text(["one", "three", "fifteen", "x", "abcdef", "ninety"] * 55)

    print("scheme   cycles   ops  wasted  blocks/entry")
    for scheme in ("BB", "M4", "M16", "P4", "P4e"):
        outcome = run_scheme(program, scheme, train, test)
        sim = outcome.result
        print(
            f"{scheme:6s} {sim.cycles:8d} {sim.operations:5d}"
            f" {sim.wasted_operations:6d}  {sim.avg_blocks_per_entry:8.2f}"
        )
        # run_scheme cross-checks the simulated output against the
        # reference interpreter, so these numbers are trustworthy.


if __name__ == "__main__":
    main()
