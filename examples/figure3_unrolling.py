"""Figure 3 of the paper, executable: classical vs path-based unrolling.

The loop body contains a conditional (arms B and C).  Under the *alt*
behaviour (B,B,B,C repeating) a path-formed superblock inlines the C
iteration at its observed position — ABD ABD ABD ACD — while classical
edge-based unrolling can only repeat the B body and takes an early exit
every fourth iteration.  Under the *phased* behaviour the path profile
builds one B-specialized and one C-specialized loop.

Run:  python examples/figure3_unrolling.py
"""

from repro.formation import form_superblocks, scheme
from repro.profiling import collect_profiles
from repro.workloads import get_workload

from repro.frontend import compile_source

LOOP_SRC = """
func main() {
    var n = read();
    var mode = read();
    var cut = n * 2 / 3;
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        var go_left = 0;
        if (mode == 0) {
            go_left = (i % 4 != 3);      // alt: T,T,T,F repeating
        } else {
            go_left = (i < cut);         // phased: T...T then F...F
        }
        if (go_left) {
            acc = acc + 1;               // arm B
        } else {
            acc = acc + 10;              // arm C
        }
    }
    print(acc);
}
"""


def show(title, mode):
    program = compile_source(LOOP_SRC)
    bundle = collect_profiles(program, input_tape=[240, mode])
    print(f"=== {title} ===")
    for name in ("M4", "P4"):
        result = form_superblocks(
            program,
            scheme(name),
            edge_profile=bundle.edge,
            path_profile=bundle.path,
        )
        print(f"-- {name} superblocks (as original-block traces):")
        for sb in result.superblocks["main"]:
            if sb.size_blocks < 3:
                continue
            trace = [result.origin_of("main", label) for label in sb.labels]
            marker = "loop" if sb.is_loop else "    "
            print(f"   {marker} {' '.join(trace)}")
    print()


def main():
    show("alt behaviour: B,B,B,C repeating (Figure 3b)", mode=0)
    show("phased behaviour: B phase then C phase (Figure 3c)", mode=1)


if __name__ == "__main__":
    main()
