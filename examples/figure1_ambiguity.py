"""Figure 1 of the paper, executable: two program runs with *identical*
edge profiles but different path profiles.

The CFG is the paper's: A and X both feed B; B exits to C or Y.  An edge
profile can only bound the frequency of the trace ABC to a range
(500 <= f(ABC) <= 1000 in the paper's numbers); the path profile pins it
exactly.

Run:  python examples/figure1_ambiguity.py
"""

from repro.ir import FunctionBuilder, Opcode, build_program
from repro.profiling import collect_profiles


def figure1_program():
    fb = FunctionBuilder("main")
    top = fb.block("top")
    route = fb.block("route")
    a = fb.block("A")
    x = fb.block("X")
    b = fb.block("B")
    c = fb.block("C")
    y = fb.block("Y")
    done = fb.block("done")

    sel, direction, t, zero = fb.regs(4)
    top.read(sel)
    top.read(direction)
    top.li(zero, 0)
    top.alu(Opcode.CMPLT, t, sel, zero)
    top.br(t, "done", "route")
    route.br(sel, "X", "A")
    a.jmp("B")
    x.jmp("B")
    b.br(direction, "Y", "C")
    c.jmp("top")
    y.jmp("top")
    done.ret()
    return build_program(fb)


def tape(abc, aby, xbc, xby):
    """Drive the four Figure-1 paths the given number of times each."""
    t = []
    t += [0, 0] * abc
    t += [0, 1] * aby
    t += [1, 0] * xbc
    t += [1, 1] * xby
    t += [-1, -1]
    return t


def describe(title, tape_words):
    program = figure1_program()
    bundle = collect_profiles(program, input_tape=tape_words)
    edge, path = bundle.edge, bundle.path
    print(title)
    for e in (("A", "B"), ("X", "B"), ("B", "C"), ("B", "Y")):
        print(f"  edge {e[0]}->{e[1]}: {edge.edge_count('main', *e)}")
    for p in (("A", "B", "C"), ("A", "B", "Y"), ("X", "B", "C"), ("X", "B", "Y")):
        print(f"  path {''.join(p)}: {path.freq('main', p)}")
    print()


def main():
    # Both executions produce edge counts A->B=1000, X->B=500, B->C=1000,
    # B->Y=500 -- yet the trace ABC completes 1000 times in the first and
    # only 500 in the second.
    describe("Execution 1: f(ABC)=1000, f(XBY)=500", tape(1000, 0, 0, 500))
    describe(
        "Execution 2: f(ABC)=500, f(ABY)=500, f(XBC)=500",
        tape(500, 500, 500, 0),
    )
    print(
        "Same edge profile, different path profiles: an edge-based selector"
        "\ncan only bound f(ABC) to [500, 1000]; the path profile is exact."
    )


if __name__ == "__main__":
    main()
