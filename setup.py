"""Legacy setup shim: enables `pip install -e .` on environments whose
setuptools predates PEP 660 editable installs.  Metadata lives in
pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
