"""Benchmark harness for Figure 5: P4 and P4e vs M4 through the 32KB
direct-mapped I-cache (6-cycle miss penalty), SPEC substitutes.

The paper's shape: path-based scheduling keeps most of its benefit despite
code expansion; P4e restrains expansion and outperforms the edge-based
approach across the SPEC programs.
"""

from repro.experiments import figure5, format_figure5
from repro.workloads import SPEC_NAMES

from .conftest import BENCH_SCALE, run_once


def test_figure5_spec_half1(benchmark):
    series = run_once(
        benchmark, figure5, scale=BENCH_SCALE, workload_names=SPEC_NAMES[:5]
    )
    print()
    print(format_figure5(series))
    benchmark.extra_info["normalized"] = series.values
    for per in series.values.values():
        assert set(per) == {"P4", "P4e"}


def test_figure5_spec_half2(benchmark):
    series = run_once(
        benchmark, figure5, scale=BENCH_SCALE, workload_names=SPEC_NAMES[5:]
    )
    print()
    print(format_figure5(series))
    benchmark.extra_info["normalized"] = series.values
    for per in series.values.values():
        assert per["P4"] > 0 and per["P4e"] > 0
