"""Benchmark harness for Table 1: benchmark statistics.

Regenerates the per-benchmark size / dynamic branch / cycle / instruction
rows (BB-scheduled, testing input) and prints them in the paper's layout.
"""

from repro.experiments import format_table1, table1
from repro.workloads import SUITE_ORDER

from .conftest import BENCH_SCALE, run_once


def test_table1_micro(benchmark):
    rows = run_once(
        benchmark,
        table1,
        scale=BENCH_SCALE,
        workload_names=["alt", "ph", "corr", "wc"],
    )
    print()
    print(format_table1(rows))
    assert [r.name for r in rows] == ["alt", "ph", "corr", "wc"]
    benchmark.extra_info["rows"] = {
        r.name: {"branches": r.branches, "cycles": r.cycles} for r in rows
    }


def test_table1_spec92(benchmark):
    rows = run_once(
        benchmark,
        table1,
        scale=BENCH_SCALE,
        workload_names=["com", "eqn", "esp"],
    )
    print()
    print(format_table1(rows))
    for row in rows:
        assert row.cycles > 0


def test_table1_spec95(benchmark):
    rows = run_once(
        benchmark,
        table1,
        scale=BENCH_SCALE,
        workload_names=["gcc", "go", "ijpeg", "li", "m88k", "perl", "vortex"],
    )
    print()
    print(format_table1(rows))
    assert len(rows) == 7
    # every benchmark runs long enough to be schedulable study material
    for row in rows:
        assert row.instructions > 1000
