"""Timing smoke test for the experiment engine's fast paths.

Runs a small suite slice four ways — serial/uncached (the baseline every
accelerator must match bit-for-bit), parallel, cold-cache, and warm-cache —
plus a raw interpreter throughput probe, a profile-collection benchmark
(streaming observers vs record-once/replay-many), a depth-sweep timing
over cold vs warm trace caches, and a metrics-instrumentation overhead
measurement (suite with vs without a ``MetricsSink`` attached), and writes
the measurements to ``BENCH_pipeline.json`` at the repo root.  The report
doubles as the bench-tripwire baseline: ``python -m repro.experiments
report --check-bench NEW.json`` fails when any ratio metric regresses more
than 25% against it.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--scale 0.25] [--jobs 2]

This is a smoke test, not a statistics-grade benchmark: one round per
configuration, wall-clock via ``time.perf_counter``.  The headline numbers
in EXPERIMENTS.md come from timing ``python -m repro.experiments all``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import (  # noqa: E402
    MIN_PARALLEL_TASKS,
    ExperimentCache,
    depth_sweep,
    gap_check,
    run_suite,
)
from repro.interp.interpreter import run_program  # noqa: E402
from repro.jit import JIT_STATS  # noqa: E402
from repro.metrics import MetricsSink  # noqa: E402
from repro.pipeline import compile_scheme  # noqa: E402
from repro.profiling import (  # noqa: E402
    collect_profiles_streaming,
    profiles_from_trace_multi,
    record_trace,
)
from repro.simulate import simulate  # noqa: E402
from repro.workloads.suite import workload_map  # noqa: E402

SCHEMES = ["M4", "P4", "P4e"]
NAMES = ["alt", "corr", "wc", "eqn", "m88k"]


def _cycles(results):
    return {f"{w}/{s}": o.result.cycles for (w, s), o in results.items()}


def _best_of(fn, rounds):
    """Warm once, then best-of-``rounds`` wall clock with the GC paused.

    The microbenchmarks time allocation-heavy engine hot paths from inside
    a process whose heap already holds prior sections' results; collector
    pauses landing inside a round would charge unrelated garbage to
    whichever engine ran last.
    """
    import gc

    fn()  # warm: JIT codegen, decode caches, interned tables
    wall = None
    result = None
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - start
            if wall is None or elapsed < wall:
                wall, result = elapsed, out
    finally:
        if gc_was_enabled:
            gc.enable()
    return wall, result


def time_suite(label, **kwargs):
    start = time.perf_counter()
    results = run_suite(SCHEMES, NAMES, **kwargs)
    wall = time.perf_counter() - start
    print(f"  {label:<16} {wall:7.2f}s")
    return wall, results


#: ``python -m repro.experiments all --scale 0.25 --quiet`` on the growth
#: seed (commit 49e8657, serial engine, no cache, no fast paths), measured
#: on the same machine as the numbers this script writes.  The end-to-end
#: speedups below are relative to this.
SEED_ALL_SECONDS = {"0.25": 14.85, "1.0": 44.5}


def time_all(label, scale, extra_args, env):
    """Time one full ``python -m repro.experiments all`` child run."""
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments",
        "all",
        "--scale",
        str(scale),
        "--quiet",
    ] + extra_args
    start = time.perf_counter()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(f"{label} failed:\n{proc.stderr[-2000:]}")
    print(f"  {label:<16} {wall:7.2f}s")
    return wall, proc.stdout


def end_to_end(scale):
    """Time ``experiments all`` uncached vs cold- and warm-cached."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory() as tmp:
        env["REPRO_CACHE_DIR"] = tmp
        uncached, out_uncached = time_all(
            "all (no cache)", scale, ["--no-cache", "--jobs", "1"], env
        )
        cold, out_cold = time_all("all (cold)", scale, ["--jobs", "1"], env)
        warm, out_warm = time_all("all (warm)", scale, ["--jobs", "1"], env)
    assert out_cold == out_uncached, "cold-cache output diverged"
    assert out_warm == out_uncached, "warm-cache output diverged"
    seed = SEED_ALL_SECONDS.get(str(scale))
    report = {
        "command": f"python -m repro.experiments all --scale {scale} --quiet",
        "wall_seconds": {
            "no_cache": round(uncached, 2),
            "cache_cold": round(cold, 2),
            "cache_warm": round(warm, 2),
        },
        "outputs": "byte-identical across all three runs",
    }
    if seed:
        report["seed_baseline_seconds"] = seed
        report["speedup_vs_seed"] = {
            "no_cache": round(seed / uncached, 2),
            "cache_cold": round(seed / cold, 2),
            "cache_warm": round(seed / warm, 2),
        }
    return report


PROFILE_DEPTHS = (1, 3, 7, 15)


def profile_collection(scale, rounds=5):
    """Streaming observers vs record-once/replay-many over the suite slice.

    Both engines produce all three profiles (edge, general path, forward
    path) for every workload at every depth in ``PROFILE_DEPTHS``.  The
    streaming baseline re-executes the interpreter under live observers
    for each depth; the batch engine records each workload's trace once
    and replays it through the multi-depth profiler in a single pass.
    Each engine is warmed once (JIT codegen, decode caches) and timed
    best-of-``rounds``.
    """
    jobs = [
        (workload_map()[name].program(), workload_map()[name].train_tape(scale))
        for name in NAMES
    ]

    def run_streaming():
        return [
            collect_profiles_streaming(
                program, input_tape=train, depth=depth, include_forward=True
            )
            for program, train in jobs
            for depth in PROFILE_DEPTHS
        ]

    def run_batch():
        traced_runs = [
            record_trace(program, input_tape=train) for program, train in jobs
        ]
        bundles = []
        for (program, _), traced in zip(jobs, traced_runs):
            by_depth = profiles_from_trace_multi(
                program, traced, PROFILE_DEPTHS, include_forward=True
            )
            bundles.extend(by_depth[depth] for depth in PROFILE_DEPTHS)
        return traced_runs, bundles

    stream_wall, stream_bundles = _best_of(run_streaming, rounds)
    batch_wall, (traced_runs, batch_bundles) = _best_of(run_batch, rounds)

    for streamed, batched in zip(stream_bundles, batch_bundles):
        assert batched.edge.edges == streamed.edge.edges
        assert batched.path.paths == streamed.path.paths
        assert batched.forward.paths == streamed.forward.paths

    # Dynamic blocks profiled (one per executed block per depth pass).
    blocks = sum(t.trace.num_blocks for t in traced_runs) * len(PROFILE_DEPTHS)
    speedup = stream_wall / batch_wall if batch_wall else 0.0
    print(
        f"  profiles stream  {stream_wall:7.2f}s "
        f"({blocks / stream_wall:,.0f} blocks/sec)"
    )
    print(
        f"  profiles batch   {batch_wall:7.2f}s "
        f"({blocks / batch_wall:,.0f} blocks/sec, {speedup:.2f}x)"
    )
    return {
        "workloads": NAMES,
        "depths": list(PROFILE_DEPTHS),
        "profiles": ["edge", "path", "forward"],
        "dynamic_blocks_profiled": blocks,
        "wall_seconds": {
            "streaming_observers": round(stream_wall, 3),
            "record_and_replay": round(batch_wall, 3),
        },
        "blocks_per_second": {
            "streaming_observers": round(blocks / stream_wall),
            "record_and_replay": round(blocks / batch_wall),
        },
        "speedup_record_replay_vs_streaming": round(speedup, 2),
        "parity": "all profiles identical across both engines",
    }


def depth_sweep_trace_cache(scale):
    """Time the depth-sweep ablation on a cold vs a warm trace cache.

    On the warm run, ``record_trace`` is replaced with a tripwire: the
    sweep must complete purely by replaying cached traces — re-executing
    the interpreter on any training input is a failure, not a slowdown.
    """
    import repro.experiments.ablations as ablations

    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = ExperimentCache(path=tmp)
        start = time.perf_counter()
        cold_rows = depth_sweep(scale=scale, cache=cold_cache)
        cold_wall = time.perf_counter() - start
        print(f"  depthsweep cold  {cold_wall:7.2f}s")

        warm_cache = ExperimentCache(path=tmp)
        saved = ablations.record_trace

        def tripwire(*args, **kwargs):
            raise RuntimeError("warm depth sweep re-executed the interpreter")

        ablations.record_trace = tripwire
        try:
            start = time.perf_counter()
            warm_rows = depth_sweep(scale=scale, cache=warm_cache)
            warm_wall = time.perf_counter() - start
        finally:
            ablations.record_trace = saved
        print(f"  depthsweep warm  {warm_wall:7.2f}s")
    assert warm_rows == cold_rows, "depth-sweep trace replay parity broken"
    return {
        "depths": [1, 3, 7, 15],
        "wall_seconds": {
            "trace_cache_cold": round(cold_wall, 3),
            "trace_cache_warm": round(warm_wall, 3),
        },
        "speedup_warm_vs_cold": round(cold_wall / warm_wall, 2),
        "warm_run": "zero training-run interpreter executions (enforced)",
        "parity": "identical rows cold vs warm",
    }


def metrics_overhead(scale, rounds=3):
    """Wall-clock cost of running the suite with a metrics sink attached.

    The ISSUE's acceptance bar is <2% overhead at smoke scale; a single
    round is too noisy to resolve that, so each configuration takes the
    best of ``rounds`` runs.  Results must stay bit-identical either way.
    """
    off_wall = None
    off_results = None
    for _ in range(rounds):
        wall, results = _suite_wall(scale, metrics=None)
        if off_wall is None or wall < off_wall:
            off_wall, off_results = wall, results
    sink = None
    best_on = None
    on_results = None
    for _ in range(rounds):
        round_sink = MetricsSink()
        wall, results = _suite_wall(scale, metrics=round_sink)
        if best_on is None or wall < best_on:
            best_on, on_results, sink = wall, results, round_sink
    assert _cycles(on_results) == _cycles(off_results), (
        "metrics collection changed results"
    )
    overhead = (best_on - off_wall) / off_wall if off_wall else 0.0
    print(
        f"  metrics off      {off_wall:7.2f}s\n"
        f"  metrics on       {best_on:7.2f}s ({overhead:+.1%})"
    )
    return sink, {
        "rounds": rounds,
        "wall_seconds": {
            "metrics_off": round(off_wall, 3),
            "metrics_on": round(best_on, 3),
        },
        "overhead_fraction": round(overhead, 4),
        # Higher is better (1.0 = zero overhead); the bench tripwire fails
        # when instrumentation cost grows and this ratio drops.
        "speedup_on_vs_off": round(off_wall / best_on, 3) if best_on else 0.0,
        "stage_seconds_total": round(sink.total_stage_seconds, 3),
        "parity": "cycles identical with and without the sink",
    }


def _suite_wall(scale, metrics):
    start = time.perf_counter()
    results = run_suite(SCHEMES, NAMES, scale=scale, metrics=metrics)
    return time.perf_counter() - start, results


def jit_benchmarks(scale, rounds=9):
    """Template-JIT cost and payoff: compile wall, cache hits, speedups.

    Times the interpreter and the VLIW simulator on the ``eqn`` workload
    with the JIT forced off (reference loops) and on (generated code),
    best of ``rounds``; results must agree bit-for-bit.  The first JIT run
    pays codegen (``compile_seconds``), the rest must hit the code cache.
    """
    workload = workload_map()["eqn"]
    program = workload.program()
    tape = workload.test_tape(scale)
    _, _, compiled, _ = compile_scheme(program, "P4", workload.train_tape(scale))

    before = JIT_STATS.snapshot()
    interp_on_wall, interp_on = _best_of(
        lambda: run_program(program, input_tape=tape, jit=True), rounds
    )
    vliw_on_wall, vliw_on = _best_of(
        lambda: simulate(compiled, input_tape=tape, jit=True), rounds
    )
    moved = JIT_STATS.delta(before)
    interp_off_wall, interp_off = _best_of(
        lambda: run_program(program, input_tape=tape, jit=False), rounds
    )
    vliw_off_wall, vliw_off = _best_of(
        lambda: simulate(compiled, input_tape=tape, jit=False), rounds
    )
    assert interp_on.output == interp_off.output, "interp JIT parity broken"
    assert interp_on.instructions == interp_off.instructions
    assert vliw_on.cycles == vliw_off.cycles, "VLIW JIT parity broken"
    assert vliw_on.output == vliw_off.output, "VLIW JIT parity broken"

    interp_speedup = interp_off_wall / interp_on_wall if interp_on_wall else 0.0
    vliw_speedup = vliw_off_wall / vliw_on_wall if vliw_on_wall else 0.0
    print(
        f"  jit interp       {interp_on_wall:7.2f}s"
        f" vs {interp_off_wall:.2f}s off ({interp_speedup:.2f}x)"
    )
    print(
        f"  jit vliw         {vliw_on_wall:7.2f}s"
        f" vs {vliw_off_wall:.2f}s off ({vliw_speedup:.2f}x)"
    )
    return {
        "workload": "eqn",
        "rounds": rounds,
        "compile_seconds": round(moved["compile_seconds"], 3),
        "procs_compiled": moved["procs_compiled"],
        "code_cache_hits": moved["code_cache_hits"],
        "code_cache_misses": moved["code_cache_misses"],
        "wall_seconds": {
            "interp_jit_on": round(interp_on_wall, 3),
            "interp_jit_off": round(interp_off_wall, 3),
            "vliw_jit_on": round(vliw_on_wall, 3),
            "vliw_jit_off": round(vliw_off_wall, 3),
        },
        "speedup_on_vs_off": round(interp_speedup, 2),
        "vliw_speedup_on_vs_off": round(vliw_speedup, 2),
        "parity": "outputs and counters identical with the JIT on and off",
    }


def worker_warmup():
    """First-task import cost with and without the pre-importing pool
    initializer, measured under spawn in a clean child process (this
    process has long since imported everything, so measuring in-process
    would read 0 for both)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service._warmup_bench"],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"warmup bench failed:\n{proc.stderr[-2000:]}")
    report = json.loads(proc.stdout)
    print(
        f"  worker import    {report['cold_first_import_seconds']:7.2f}s cold"
        f" vs {report['warm_first_import_seconds']:.2f}s pre-imported (spawn)"
    )
    return report


#: One workload: the service headline targets the smallest batches, where
#: a cold process's startup (interpreter + compiler import chain) rivals
#: or exceeds the compute itself and a warm daemon saves the most.
SERVICE_WORKLOADS = ["alt"]


def service_benchmarks(scale, rounds=3):
    """The daemon's value proposition, measured: a warm submit against a
    live daemon vs the same grid as a cold CLI process, plus the in-flight
    dedup rate for two concurrent identical clients and the round-trip
    latency of a fully cached submit.

    The grid is small (``SERVICE_WORKLOADS`` x ``SCHEMES``) on purpose:
    small batches are exactly where cold-process overhead — interpreter
    startup, the compiler import chain, pool spin-up — used to dominate
    (the seed's parallel row sat at ~0.6x for this reason).  The daemon
    pays those once at startup, so its warm submits only pay compute.
    All timings are best-of-``rounds``; submits run ``no_cache`` so every
    round recomputes instead of answering from the disk cache.
    """
    import threading

    from repro.service.client import ServiceClient, service_available

    tasks = len(SERVICE_WORKLOADS) * len(SCHEMES)
    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as root:
        socket_path = Path(root) / "svc.sock"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(Path(root) / "cache")
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--socket",
                str(socket_path),
                "--workers",
                "2",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.perf_counter() + 120
            while not service_available(socket_path):
                if daemon.poll() is not None or time.perf_counter() > deadline:
                    raise RuntimeError("service daemon failed to start")
                time.sleep(0.2)

            def warm_submit():
                with ServiceClient(socket_path) as client:
                    client.hello()
                    return client.submit(
                        SCHEMES,
                        workloads=SERVICE_WORKLOADS,
                        scale=scale,
                        no_cache=True,
                    )

            # Warm-up primes worker-process program/JIT caches, then
            # best-of-rounds measures the steady state a long-lived daemon
            # actually serves.
            warm_wall, warm_out = _best_of(warm_submit, rounds)
            assert warm_out.stats["computed"] == tasks

            # The same grid as a cold CLI process: interpreter startup,
            # imports, and compute all inside one throwaway python run
            # (the auto-fallback path, pointed at a socket nobody owns).
            cold_cmd = [
                sys.executable,
                "-m",
                "repro.service",
                "submit",
                "--schemes",
                ",".join(SCHEMES),
                "--workloads",
                ",".join(SERVICE_WORKLOADS),
                "--scale",
                str(scale),
                "--no-cache",
                "--socket",
                str(Path(root) / "nobody-home.sock"),
                "--quiet",
            ]
            cold_wall = None
            cold_stdout = None
            for _ in range(rounds):
                start = time.perf_counter()
                proc = subprocess.run(
                    cold_cmd, env=env, capture_output=True, text=True
                )
                elapsed = time.perf_counter() - start
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"cold CLI submit failed:\n{proc.stderr[-2000:]}"
                    )
                if cold_wall is None or elapsed < cold_wall:
                    cold_wall, cold_stdout = elapsed, proc.stdout

            # Same table bytes from both engines, or the comparison is
            # meaningless.
            warm_proc = subprocess.run(
                cold_cmd[:-3] + ["--socket", str(socket_path), "--quiet"],
                env=env,
                capture_output=True,
                text=True,
            )
            assert warm_proc.returncode == 0, warm_proc.stderr[-2000:]
            assert warm_proc.stdout == cold_stdout, (
                "daemon and cold CLI rendered different tables"
            )

            # Warm in-process serial, for an honest same-process baseline:
            # on a single-CPU box the pool cannot beat this on compute, and
            # the report says so instead of hiding it.
            serial_wall, _ = _best_of(
                lambda: run_suite(
                    SCHEMES, SERVICE_WORKLOADS, scale=scale, cache=None
                ),
                rounds,
            )

            # Two concurrent identical clients: the second must ride the
            # first's in-flight futures, computing nothing.
            dedup_outcomes = []

            def dedup_submit():
                dedup_outcomes.append(warm_submit())

            threads = [
                threading.Thread(target=dedup_submit) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            computed = sum(o.stats["computed"] for o in dedup_outcomes)
            dedup = sum(o.stats["dedup"] for o in dedup_outcomes)
            assert computed == tasks, "dedup benchmark recomputed work"
            hit_rate = dedup / (computed + dedup)

            # Round-trip latency of a submit served entirely from the
            # shared cache (one task; measures protocol + cache overhead).
            def cached_submit():
                with ServiceClient(socket_path) as client:
                    client.hello()
                    return client.submit(
                        [SCHEMES[0]], workloads=[SERVICE_WORKLOADS[0]],
                        scale=scale,
                    )

            cached_wall, cached_out = _best_of(cached_submit, rounds)
            assert set(cached_out.dispositions.values()) == {"cache"}

            with ServiceClient(socket_path, timeout=30.0) as client:
                client.shutdown()
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    cli_speedup = cold_wall / warm_wall if warm_wall else 0.0
    serial_ratio = serial_wall / warm_wall if warm_wall else 0.0
    print(
        f"  service warm     {warm_wall:7.2f}s"
        f" vs {cold_wall:.2f}s cold CLI ({cli_speedup:.2f}x)"
    )
    print(
        f"  service dedup    {hit_rate:7.2f} hit rate,"
        f" cached submit {cached_wall * 1000:.0f}ms"
    )
    return {
        "workers": 2,
        "workloads": SERVICE_WORKLOADS,
        "schemes": SCHEMES,
        "tasks": tasks,
        "rounds": rounds,
        "wall_seconds": {
            "warm_submit": round(warm_wall, 3),
            "cold_cli_in_process": round(cold_wall, 3),
            "warm_serial_in_process": round(serial_wall, 3),
            "cached_submit": round(cached_wall, 3),
        },
        "small_batch": {
            # Headline: the same small batch that used to pay cold-process
            # overhead every invocation, against a warm daemon.
            "speedup_warm_pool_vs_cold_cli": round(cli_speedup, 2),
            # Honest same-process comparison: >1.0 only when compute
            # parallelism wins, which a single-CPU runner cannot show.
            "warm_serial_over_warm_submit": round(serial_ratio, 2),
        },
        "dedup": {
            "clients": 2,
            "hit_rate": round(hit_rate, 3),
            "computed": computed,
            "deduped": dedup,
        },
        "parity": "daemon and cold-CLI tables byte-identical",
    }


def scheduler_quality(scale, max_ops=48, node_budget=20_000):
    """Deterministic scheduler-gap section (no wall clock involved).

    Runs the list-vs-oracle ``gapcheck`` over the smoke slice with a small
    search budget; ``gap_from_optimal`` is the weighted fraction of cycles
    the list scheduler gives up against the exact schedule — the bench
    tripwire's only lower-is-better metric.
    """
    summary = gap_check(
        scheme_names=SCHEMES,
        scale=scale,
        workload_names=NAMES,
        max_ops=max_ops,
        node_budget=node_budget,
    )
    fraction = summary.gap_fraction
    print(
        f"  scheduler gap    {fraction * 100:.3f}% of weighted cycles"
        f" ({summary.count('optimal')} proved optimal,"
        f" {summary.count('budget')} budget-bound,"
        f" {summary.count('skipped')} skipped)"
    )
    return {
        "schemes": SCHEMES,
        "oracle_max_ops": max_ops,
        "oracle_node_budget": node_budget,
        "superblocks": len(summary.rows),
        "proved_optimal": summary.count("optimal"),
        "budget_exhausted": summary.count("budget"),
        "skipped": summary.count("skipped"),
        "weighted_gap_cycles": summary.weighted_gap,
        "weighted_list_cycles": summary.weighted_list_cycles,
        "gap_from_optimal": round(fraction, 4),
    }


#: Workloads with inlinable call sites / long uniform loop runs: the
#: slice where the interprocedural schemes actually fire.
INTERPROC_NAMES = ["gcc", "eqn", "go"]
INTERPROC_SCHEMES = ["P4", "P4i", "P4k"]


def interproc_formation(scale):
    """Deterministic interprocedural-formation counters (no wall clock).

    Runs the P4/P4i/P4k comparison over the hot slice with a metrics sink
    attached and reports the ``inline.*`` / ``kiter.*`` counter families
    plus the cycle fraction the best interprocedural scheme saves over
    P4.  All values are deterministic, so the bench tripwire can hold
    them to the committed baseline: the inliner silently matching zero
    sites (or the k-iteration profiler observing zero paths) reads as a
    regression, not noise.
    """
    sink = MetricsSink()
    results = run_suite(
        INTERPROC_SCHEMES, INTERPROC_NAMES, scale=scale, metrics=sink
    )
    base = sum(
        results[(name, "P4")].result.cycles for name in INTERPROC_NAMES
    )
    best = sum(
        min(
            results[(name, sname)].result.cycles
            for sname in INTERPROC_SCHEMES
        )
        for name in INTERPROC_NAMES
    )
    counters = sink.counters
    saved = (base - best) / base if base else 0.0
    print(
        f"  interproc        {counters.get('inline.sites_inlined', 0)} sites"
        f" inlined, {counters.get('kiter.paths_observed', 0):,} k-iter paths,"
        f" {saved:.2%} cycles saved"
    )
    return {
        "workloads": INTERPROC_NAMES,
        "schemes": INTERPROC_SCHEMES,
        "sites_inlined": counters.get("inline.sites_inlined", 0),
        "procs_inlined": counters.get("inline.procs_inlined", 0),
        "instructions_added": counters.get("inline.instructions_added", 0),
        "procs_pruned": counters.get("inline.procs_pruned", 0),
        "kiter_paths_observed": counters.get("kiter.paths_observed", 0),
        "kiter_loops_profiled": counters.get("kiter.loops_profiled", 0),
        "weighted_cycles": {"P4": base, "best_interproc": best},
        "cycles_saved_fraction": round(saved, 4),
    }


def interpreter_throughput(scale, rounds=5):
    """Dynamic instructions per second through the interpreter (best of
    ``rounds``; the warm-up run pays JIT codegen and decode caching)."""
    workload = workload_map()["eqn"]
    program = workload.program()
    tape = workload.test_tape(scale)
    wall, result = _best_of(
        lambda: run_program(program, input_tape=tape), rounds
    )
    return result.instructions, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_pipeline.json")
    )
    parser.add_argument(
        "--skip-e2e",
        action="store_true",
        help="skip the full 'experiments all' timing runs (~30s)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics-on run's event log to FILE as JSONL"
        " (render with: python -m repro.experiments report FILE)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="append this run's report to the bench history store"
        " (the file 'python -m repro.experiments history' reads)",
    )
    parser.add_argument(
        "--history-keep",
        type=int,
        default=None,
        metavar="N",
        help="with --history, prune the store to the newest N runs",
    )
    args = parser.parse_args(argv)

    print(
        f"perf_smoke: {len(NAMES)} workloads x {len(SCHEMES)} schemes,"
        f" scale={args.scale}"
    )

    serial_wall, serial = time_suite("serial", scale=args.scale)
    # min_parallel_tasks=0 bypasses the serial fallback so this measures
    # the true pool cost for a batch this size (15 tasks is under the
    # MIN_PARALLEL_TASKS threshold precisely because of this number).
    parallel_wall, parallel = time_suite(
        f"parallel x{args.jobs}",
        scale=args.scale,
        jobs=args.jobs,
        min_parallel_tasks=0,
    )
    assert _cycles(parallel) == _cycles(serial), "parallel parity broken"

    with tempfile.TemporaryDirectory() as tmp:
        cache = ExperimentCache(path=tmp)
        cold_wall, cold = time_suite("cache (cold)", scale=args.scale, cache=cache)
        assert _cycles(cold) == _cycles(serial), "cold-cache parity broken"
        warm_cache = ExperimentCache(path=tmp)
        warm_wall, warm = time_suite(
            "cache (warm)", scale=args.scale, cache=warm_cache
        )
        assert _cycles(warm) == _cycles(serial), "warm-cache parity broken"
        hit_rate = warm_cache.stats.hit_rate

    profile_report = profile_collection(args.scale)
    sweep_report = depth_sweep_trace_cache(args.scale)
    jit_report = jit_benchmarks(args.scale)
    warmup_report = worker_warmup()
    service_report = service_benchmarks(args.scale)
    scheduler_report = scheduler_quality(args.scale)
    interproc_report = interproc_formation(args.scale)
    metrics_sink, metrics_report = metrics_overhead(args.scale)
    if args.metrics_out:
        lines = metrics_sink.write_jsonl(args.metrics_out)
        print(f"  metrics log      {lines} event(s) -> {args.metrics_out}")

    instructions, interp_wall = interpreter_throughput(args.scale)
    ips = instructions / interp_wall if interp_wall else 0.0
    print(f"  interpreter      {ips:,.0f} instructions/sec")

    report = {
        "benchmark": "experiment-engine smoke",
        "workloads": NAMES,
        "schemes": SCHEMES,
        "scale": args.scale,
        "jobs": args.jobs,
        "wall_seconds": {
            "serial_uncached": round(serial_wall, 3),
            "parallel": round(parallel_wall, 3),
            "cache_cold": round(cold_wall, 3),
            "cache_warm": round(warm_wall, 3),
        },
        "speedup_vs_serial": {
            "parallel": round(serial_wall / parallel_wall, 2),
            "cache_cold": round(serial_wall / cold_wall, 2),
            "cache_warm": round(serial_wall / warm_wall, 2),
        },
        "parallel_note": (
            f"pool forced on for measurement; real runs under"
            f" {MIN_PARALLEL_TASKS} tasks fall back to the serial engine"
            f" (this batch is {len(NAMES) * len(SCHEMES)} tasks)"
        ),
        "warm_cache_hit_rate": round(hit_rate, 3),
        "profile_collection": profile_report,
        "depth_sweep": sweep_report,
        "jit": jit_report,
        "worker_warmup": warmup_report,
        "service": service_report,
        "scheduler": scheduler_report,
        "interproc": interproc_report,
        "metrics": metrics_report,
        "interpreter": {
            "workload": "eqn",
            "instructions": instructions,
            "wall_seconds": round(interp_wall, 3),
            "instructions_per_second": round(ips),
        },
        "parity": "cycles identical across all engines",
    }
    if not args.skip_e2e:
        report["experiments_all"] = end_to_end(args.scale)
    from repro.metrics import atomic_write_text

    atomic_write_text(args.output, json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.history:
        from repro.metrics import HistoryStore

        record = HistoryStore(args.history).append(
            report, source="perf_smoke", keep=args.history_keep
        )
        print(
            f"appended run {record['sha'][:12]} (machine"
            f" {record['fingerprint_id']}) -> {args.history}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
