"""Timing smoke test for the experiment engine's fast paths.

Runs a small suite slice four ways — serial/uncached (the baseline every
accelerator must match bit-for-bit), parallel, cold-cache, and warm-cache —
plus a raw interpreter throughput probe, and writes the measurements to
``BENCH_pipeline.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--scale 0.25] [--jobs 2]

This is a smoke test, not a statistics-grade benchmark: one round per
configuration, wall-clock via ``time.perf_counter``.  The headline numbers
in EXPERIMENTS.md come from timing ``python -m repro.experiments all``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import ExperimentCache, run_suite  # noqa: E402
from repro.interp.interpreter import run_program  # noqa: E402
from repro.workloads.suite import workload_map  # noqa: E402

SCHEMES = ["M4", "P4", "P4e"]
NAMES = ["alt", "corr", "wc", "eqn", "m88k"]


def _cycles(results):
    return {f"{w}/{s}": o.result.cycles for (w, s), o in results.items()}


def time_suite(label, **kwargs):
    start = time.perf_counter()
    results = run_suite(SCHEMES, NAMES, **kwargs)
    wall = time.perf_counter() - start
    print(f"  {label:<16} {wall:7.2f}s")
    return wall, results


#: ``python -m repro.experiments all --scale 0.25 --quiet`` on the growth
#: seed (commit 49e8657, serial engine, no cache, no fast paths), measured
#: on the same machine as the numbers this script writes.  The end-to-end
#: speedups below are relative to this.
SEED_ALL_SECONDS = {"0.25": 14.85, "1.0": 44.5}


def time_all(label, scale, extra_args, env):
    """Time one full ``python -m repro.experiments all`` child run."""
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments",
        "all",
        "--scale",
        str(scale),
        "--quiet",
    ] + extra_args
    start = time.perf_counter()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(f"{label} failed:\n{proc.stderr[-2000:]}")
    print(f"  {label:<16} {wall:7.2f}s")
    return wall, proc.stdout


def end_to_end(scale):
    """Time ``experiments all`` uncached vs cold- and warm-cached."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory() as tmp:
        env["REPRO_CACHE_DIR"] = tmp
        uncached, out_uncached = time_all(
            "all (no cache)", scale, ["--no-cache", "--jobs", "1"], env
        )
        cold, out_cold = time_all("all (cold)", scale, ["--jobs", "1"], env)
        warm, out_warm = time_all("all (warm)", scale, ["--jobs", "1"], env)
    assert out_cold == out_uncached, "cold-cache output diverged"
    assert out_warm == out_uncached, "warm-cache output diverged"
    seed = SEED_ALL_SECONDS.get(str(scale))
    report = {
        "command": f"python -m repro.experiments all --scale {scale} --quiet",
        "wall_seconds": {
            "no_cache": round(uncached, 2),
            "cache_cold": round(cold, 2),
            "cache_warm": round(warm, 2),
        },
        "outputs": "byte-identical across all three runs",
    }
    if seed:
        report["seed_baseline_seconds"] = seed
        report["speedup_vs_seed"] = {
            "no_cache": round(seed / uncached, 2),
            "cache_cold": round(seed / cold, 2),
            "cache_warm": round(seed / warm, 2),
        }
    return report


def interpreter_throughput(scale):
    """Dynamic instructions per second through the reference interpreter."""
    workload = workload_map()["eqn"]
    program = workload.program()
    tape = workload.test_tape(scale)
    run_program(program, input_tape=tape)  # warm the decode cache
    start = time.perf_counter()
    result = run_program(program, input_tape=tape)
    wall = time.perf_counter() - start
    return result.instructions, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_pipeline.json")
    )
    parser.add_argument(
        "--skip-e2e",
        action="store_true",
        help="skip the full 'experiments all' timing runs (~30s)",
    )
    args = parser.parse_args(argv)

    print(
        f"perf_smoke: {len(NAMES)} workloads x {len(SCHEMES)} schemes,"
        f" scale={args.scale}"
    )

    serial_wall, serial = time_suite("serial", scale=args.scale)
    parallel_wall, parallel = time_suite(
        f"parallel x{args.jobs}", scale=args.scale, jobs=args.jobs
    )
    assert _cycles(parallel) == _cycles(serial), "parallel parity broken"

    with tempfile.TemporaryDirectory() as tmp:
        cache = ExperimentCache(path=tmp)
        cold_wall, cold = time_suite("cache (cold)", scale=args.scale, cache=cache)
        assert _cycles(cold) == _cycles(serial), "cold-cache parity broken"
        warm_cache = ExperimentCache(path=tmp)
        warm_wall, warm = time_suite(
            "cache (warm)", scale=args.scale, cache=warm_cache
        )
        assert _cycles(warm) == _cycles(serial), "warm-cache parity broken"
        hit_rate = warm_cache.stats.hit_rate

    instructions, interp_wall = interpreter_throughput(args.scale)
    ips = instructions / interp_wall if interp_wall else 0.0
    print(f"  interpreter      {ips:,.0f} instructions/sec")

    report = {
        "benchmark": "experiment-engine smoke",
        "workloads": NAMES,
        "schemes": SCHEMES,
        "scale": args.scale,
        "jobs": args.jobs,
        "wall_seconds": {
            "serial_uncached": round(serial_wall, 3),
            "parallel": round(parallel_wall, 3),
            "cache_cold": round(cold_wall, 3),
            "cache_warm": round(warm_wall, 3),
        },
        "speedup_vs_serial": {
            "parallel": round(serial_wall / parallel_wall, 2),
            "cache_cold": round(serial_wall / cold_wall, 2),
            "cache_warm": round(serial_wall / warm_wall, 2),
        },
        "warm_cache_hit_rate": round(hit_rate, 3),
        "interpreter": {
            "workload": "eqn",
            "instructions": instructions,
            "wall_seconds": round(interp_wall, 3),
            "instructions_per_second": round(ips),
        },
        "parity": "cycles identical across all engines",
    }
    if not args.skip_e2e:
        report["experiments_all"] = end_to_end(args.scale)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
