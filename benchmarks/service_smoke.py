"""CI smoke test for the experiment service.

Starts a daemon on a private socket with a private cache, drives a small
grid from two concurrent clients, and checks the properties the service
exists to provide:

* results are byte-identical to the in-process engine's;
* the two clients' identical grids cost one computation total (the
  in-flight dedup counters prove it);
* a repeat submit is served entirely from the shared, sharded cache;
* shutdown is clean: exit code 0, socket removed, no orphaned workers.

Everything runs under a hard wall-clock budget so a wedged daemon fails
the build instead of hanging it.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--scale 0.25]
"""

from __future__ import annotations

import argparse
import os
import pickle
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.harness import run_suite  # noqa: E402
from repro.service.client import ServiceClient, service_available  # noqa: E402

WORKLOADS = ["alt", "com", "wc", "eqn"]
SCHEMES = ["M4", "P4"]


def log(text: str) -> None:
    print(f"[service-smoke] {text}", flush=True)


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise TimeoutError(f"timed out waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="hard budget for the whole smoke, seconds",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="append this smoke's telemetry summary to the bench history"
        " store (source=service_smoke)",
    )
    args = parser.parse_args()
    started = time.monotonic()

    def budget() -> float:
        remaining = args.timeout - (time.monotonic() - started)
        if remaining <= 0:
            raise TimeoutError("service smoke exceeded its wall-clock budget")
        return remaining

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as root:
        socket_path = Path(root) / "svc.sock"
        cache_dir = Path(root) / "cache"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        env["PYTHONPATH"] = (
            str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )

        log(f"starting daemon on {socket_path}")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--socket",
                str(socket_path),
                "--workers",
                "2",
            ],
            env=env,
        )
        try:
            wait_for(
                lambda: proc.poll() is not None
                or service_available(socket_path),
                min(120.0, budget()),
                "daemon startup",
            )
            if proc.poll() is not None:
                log(f"FAIL: daemon died during startup (exit {proc.returncode})")
                return 1
            worker_pids = []
            with ServiceClient(socket_path, timeout=budget()) as client:
                client.hello()
                worker_pids = client.status()["worker_pids"]
            log(f"daemon up, workers: {worker_pids}")

            # --- two concurrent clients, identical grids -------------------
            outcomes = {}
            errors = []

            def submit(tag: str) -> None:
                try:
                    with ServiceClient(socket_path, timeout=budget()) as c:
                        c.hello()
                        outcomes[tag] = c.submit(
                            SCHEMES, workloads=WORKLOADS, scale=args.scale
                        )
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append((tag, exc))

            threads = [
                threading.Thread(target=submit, args=(tag,))
                for tag in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=budget())
            if errors:
                for tag, exc in errors:
                    log(f"FAIL: client {tag}: {exc}")
                return 1

            total = len(WORKLOADS) * len(SCHEMES)
            computed = sum(o.stats["computed"] for o in outcomes.values())
            dedup = sum(o.stats["dedup"] for o in outcomes.values())
            cached = sum(o.stats["cache"] for o in outcomes.values())
            log(
                f"two clients, {total}-task grid each:"
                f" {computed} computed, {dedup} deduped, {cached} cached"
            )
            if computed != total:
                log(
                    f"FAIL: expected exactly {total} computations across both"
                    f" clients, got {computed} (duplicate work!)"
                )
                return 1
            if dedup + cached != total:
                log(
                    f"FAIL: the second client should ride dedup/cache for all"
                    f" {total} tasks, got dedup={dedup} cache={cached}"
                )
                return 1

            # --- byte-identical vs the in-process engine -------------------
            log("comparing against the in-process engine ...")
            local = run_suite(SCHEMES, WORKLOADS, scale=args.scale)
            for tag, out in outcomes.items():
                for pair, outcome in out.results.items():
                    expected = local[pair]
                    if pickle.dumps(outcome.result) != pickle.dumps(
                        expected.result
                    ):
                        log(
                            f"FAIL: client {tag} {pair}: daemon result"
                            " differs from in-process engine"
                        )
                        return 1
            log(f"all {total} results byte-identical to in-process engine")

            # --- repeat submit: all cache ----------------------------------
            with ServiceClient(socket_path, timeout=budget()) as client:
                client.hello()
                repeat = client.submit(
                    SCHEMES, workloads=WORKLOADS, scale=args.scale
                )
            if set(repeat.dispositions.values()) != {"cache"}:
                log(
                    "FAIL: repeat submit was not served from cache:"
                    f" {repeat.stats}"
                )
                return 1
            log("repeat submit served 100% from the shared cache")

            # --- telemetry: every request span was measured ----------------
            with ServiceClient(socket_path, timeout=budget()) as client:
                client.hello()
                status = client.status()
            histograms = status.get("histograms") or {}
            for span in (
                "service.request.plan",
                "service.request.stream",
                "service.request.total",
                "service.task.compute",
            ):
                if histograms.get(span, {}).get("count", 0) < 1:
                    log(f"FAIL: daemon recorded no {span} samples")
                    return 1
            log(
                "telemetry: request.total p99"
                f" {histograms['service.request.total']['p99_ms']:.1f} ms"
                f" over {histograms['service.request.total']['count']}"
                " request(s)"
            )
            if args.history:
                from repro.metrics import HistoryStore

                report = {
                    "dedup": {"hit_rate": dedup / total},
                    "latency": histograms,
                    "counters": status.get("counters", {}),
                }
                record = HistoryStore(args.history).append(
                    report, source="service_smoke"
                )
                log(
                    f"history: appended run {record['sha'][:12]}"
                    f" -> {args.history}"
                )

            # --- clean shutdown --------------------------------------------
            with ServiceClient(socket_path, timeout=budget()) as client:
                client.shutdown()
            exit_code = proc.wait(timeout=min(60.0, budget()))
            if exit_code != 0:
                log(f"FAIL: daemon exited {exit_code}")
                return 1
            if socket_path.exists():
                log("FAIL: daemon left its socket behind")
                return 1
            for pid in worker_pids:
                try:
                    os.kill(pid, 0)
                except OSError:
                    continue
                log(f"FAIL: worker {pid} orphaned after shutdown")
                return 1
            log(
                "clean shutdown: exit 0, socket removed, no orphaned workers"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    log(f"OK ({time.monotonic() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
