"""Benchmark harness for Figure 4: P4 vs M4 cycle counts, ideal I-cache.

Prints the normalized series (the paper reports 2-16% reductions on SPEC
and larger reductions on the microbenchmarks).
"""

from repro.experiments import figure4, format_figure4
from repro.workloads import SUITE_ORDER

from .conftest import BENCH_SCALE, run_once


def test_figure4_micro(benchmark):
    series = run_once(
        benchmark, figure4, scale=BENCH_SCALE,
        workload_names=["alt", "ph", "corr", "wc"],
    )
    print()
    print(format_figure4(series))
    benchmark.extra_info["normalized"] = {
        w: per["P4"] for w, per in series.values.items()
    }
    # The micros were constructed to showcase path formation.
    wins = sum(1 for per in series.values.values() if per["P4"] <= 1.0)
    assert wins >= 3


def test_figure4_spec(benchmark):
    names = [n for n in SUITE_ORDER if n not in ("alt", "ph", "corr", "wc")]
    series = run_once(
        benchmark, figure4, scale=BENCH_SCALE, workload_names=names
    )
    print()
    print(format_figure4(series))
    benchmark.extra_info["normalized"] = {
        w: per["P4"] for w, per in series.values.items()
    }
    for w, per in series.values.items():
        assert per["P4"] > 0
