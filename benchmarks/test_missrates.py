"""Benchmark harness for Section 4's I-cache miss-rate comparison.

The paper reports edge-based miss rates of 2.67% (gcc) and 2.53% (go)
versus path-based 3.92% and 4.67%: path-based code expansion costs I-cache
locality.  The shape to reproduce: P4's miss rate is at least M4's, and P4e
pulls it back down.
"""

from repro.experiments import format_missrates, missrates

from .conftest import BENCH_SCALE, run_once


def test_missrates_gcc_go(benchmark):
    rows = run_once(
        benchmark,
        missrates,
        scale=BENCH_SCALE,
        workload_names=("gcc", "go"),
        schemes=("M4", "P4", "P4e"),
    )
    print()
    print(format_missrates(rows))
    benchmark.extra_info["rates"] = {
        row.workload: row.rates for row in rows
    }
    for row in rows:
        # Path-based code expansion should not *reduce* the miss rate.
        assert row.rates["P4"] >= row.rates["M4"] * 0.5
