"""Benchmark harness for Figure 6: exploit paths (P4e, unroll limit 4) or
unroll harder (M16, edge profiles)?

The paper's surprising result: except for a few unrolling-dominated
benchmarks, P4e with an unroll limit of 4 beats edge-based scheduling with
an unroll limit of 16.
"""

from repro.experiments import figure6, format_figure6
from repro.workloads import SPEC_NAMES

from .conftest import BENCH_SCALE, run_once


def test_figure6_spec_half1(benchmark):
    series = run_once(
        benchmark, figure6, scale=BENCH_SCALE, workload_names=SPEC_NAMES[:5]
    )
    print()
    print(format_figure6(series))
    benchmark.extra_info["normalized"] = series.values
    for per in series.values.values():
        assert set(per) == {"P4e", "M16"}


def test_figure6_spec_half2(benchmark):
    series = run_once(
        benchmark, figure6, scale=BENCH_SCALE, workload_names=SPEC_NAMES[5:]
    )
    print()
    print(format_figure6(series))
    benchmark.extra_info["normalized"] = series.values
    for per in series.values.values():
        assert per["M16"] > 0
