"""Benchmark harness for Figure 7: blocks executed per dynamic superblock
(gray bars) vs superblock size in blocks (white extensions), for the M4,
M16, P4e, and P4 schemes.

The paper's claim: path-based formation yields superblocks where execution
stays longer before exiting ("average" grows), often with smaller regions
than M16 ("maximum" stays moderate) — except where unrolling dominates.
"""

from repro.experiments import figure7, format_figure7
from repro.workloads import SUITE_ORDER

from .conftest import BENCH_SCALE, run_once


def test_figure7_micro(benchmark):
    data = run_once(
        benchmark, figure7, scale=BENCH_SCALE,
        workload_names=["alt", "ph", "corr", "wc"],
    )
    print()
    print(format_figure7(data))
    benchmark.extra_info["values"] = {
        w: {s: list(v) for s, v in per.items()}
        for w, per in data.values.items()
    }
    # Path formation raises blocks-per-entry on the micros vs M4.
    for w in ("alt", "ph", "corr"):
        per = data.values[w]
        assert per["P4"][0] >= per["M4"][0] * 0.9


def test_figure7_spec(benchmark):
    names = [n for n in SUITE_ORDER if n not in ("alt", "ph", "corr", "wc")]
    data = run_once(
        benchmark, figure7, scale=BENCH_SCALE, workload_names=names
    )
    print()
    print(format_figure7(data))
    for per in data.values.values():
        for executed, size in per.values():
            assert 0 < executed <= size + 1e-9
