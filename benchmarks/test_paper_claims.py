"""Benchmark harness for the paper's secondary claims.

* Section 3.2's latency-sensitivity remark;
* Section 2.2's general-vs-forward path argument;
* the correlation story inherited from Young & Smith's static correlated
  branch prediction (the corr microbenchmark's raison d'être).
"""

from repro.experiments import (
    format_forward_vs_general,
    format_latency_sensitivity,
    format_static_prediction,
    forward_vs_general,
    latency_sensitivity,
    static_prediction,
)

from .conftest import BENCH_SCALE, run_once


def test_latency_sensitivity(benchmark):
    rows = run_once(
        benchmark,
        latency_sensitivity,
        scale=BENCH_SCALE,
        workload_names=["alt", "corr", "eqn"],
    )
    print()
    print(format_latency_sensitivity(rows))
    benchmark.extra_info["ratios"] = {
        r.workload: (r.unit_ratio, r.realistic_ratio) for r in rows
    }
    for row in rows:
        assert row.unit_ratio > 0 and row.realistic_ratio > 0


def test_forward_vs_general_paths(benchmark):
    rows = run_once(
        benchmark,
        forward_vs_general,
        scale=BENCH_SCALE,
        workload_names=["alt", "ph", "corr"],
    )
    print()
    print(format_forward_vs_general(rows))
    # General paths must not lose to forward paths on the micros built to
    # showcase cross-back-edge behaviour.
    for row in rows:
        assert row.forward_cycles >= row.general_cycles * 0.98


def test_static_prediction_accuracy(benchmark):
    rows = run_once(
        benchmark,
        static_prediction,
        scale=BENCH_SCALE,
        workload_names=["alt", "ph", "corr", "wc"],
    )
    print()
    print(format_static_prediction(rows))
    accuracy = {r.workload: r.path_accuracy for r in rows}
    assert accuracy["corr"] > 0.9
