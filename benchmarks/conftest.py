"""Shared benchmark configuration.

The benchmark harness regenerates every table and figure of the paper at a
reduced input scale (full-scale regeneration is ``python -m
repro.experiments all``).  Heavy pipeline benchmarks run one round via
``benchmark.pedantic`` so pytest-benchmark's calibration does not multiply
their cost.
"""

import pytest

#: Input scale used by the benchmark harness (1.0 in EXPERIMENTS.md runs).
BENCH_SCALE = 0.25


@pytest.fixture
def bench_scale():
    """Scale factor for benchmark workload inputs."""
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under timing (no calibration rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
