"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the cost/benefit of individual
mechanisms:

* profiling overhead — the paper claims general path profiling averages to
  O(1) work per executed edge, like edge profiling;
* renaming — how much schedule length the combined renaming buys;
* completion-threshold ablation — enlarging everything vs only superblocks
  that complete often;
* local optimization (VN+DCE) impact on cycle counts.
"""

import time

from repro.formation import scheme
from repro.interp import run_program
from repro.pipeline import run_scheme
from repro.profiling import EdgeProfiler, GeneralPathProfiler
from repro.workloads import get_workload

from .conftest import BENCH_SCALE, run_once


def test_ablation_profiling_overhead(benchmark):
    """Path profiling work per edge stays within ~4x of edge profiling."""
    w = get_workload("wc")
    program = w.program()
    tape = w.train_tape(BENCH_SCALE)

    def run_both():
        t0 = time.perf_counter()
        edge = EdgeProfiler()
        run_program(program, input_tape=tape, observer=edge)
        t_edge = time.perf_counter() - t0
        t0 = time.perf_counter()
        path = GeneralPathProfiler(program)
        run_program(program, input_tape=tape, observer=path)
        path.finalize()
        t_path = time.perf_counter() - t0
        return t_edge, t_path

    t_edge, t_path = run_once(benchmark, run_both)
    print(f"\nedge profiling: {t_edge:.3f}s, path profiling: {t_path:.3f}s")
    benchmark.extra_info["edge_s"] = t_edge
    benchmark.extra_info["path_s"] = t_path
    assert t_path < t_edge * 25  # generous bound; typically ~2-4x


def test_ablation_completion_threshold(benchmark):
    """Gating enlargement on completion frequency vs enlarging everything."""
    w = get_workload("go")

    def run_pair():
        gated = run_scheme(
            w.program(), "P4",
            w.train_tape(BENCH_SCALE), w.test_tape(BENCH_SCALE),
            config=scheme("P4", completion_threshold=0.5),
        )
        ungated = run_scheme(
            w.program(), "P4",
            w.train_tape(BENCH_SCALE), w.test_tape(BENCH_SCALE),
            config=scheme("P4", completion_threshold=0.0),
        )
        return gated, ungated

    gated, ungated = run_once(benchmark, run_pair)
    print(
        f"\ncompletion gate: cycles {gated.result.cycles} "
        f"(code {gated.compiled.total_scheduled_instructions()}) vs "
        f"ungated {ungated.result.cycles} "
        f"(code {ungated.compiled.total_scheduled_instructions()})"
    )
    assert gated.result.cycles > 0 and ungated.result.cycles > 0


def test_ablation_local_optimization(benchmark):
    """VN+DCE should never hurt and usually trims the enlarged code."""
    w = get_workload("alt")

    def run_pair():
        opt = run_scheme(
            w.program(), "P4",
            w.train_tape(BENCH_SCALE), w.test_tape(BENCH_SCALE),
            optimize=True,
        )
        raw = run_scheme(
            w.program(), "P4",
            w.train_tape(BENCH_SCALE), w.test_tape(BENCH_SCALE),
            optimize=False,
        )
        return opt, raw

    opt, raw = run_once(benchmark, run_pair)
    print(
        f"\nVN+DCE: {opt.result.cycles} cycles,"
        f" {opt.compiled.total_scheduled_instructions()} instrs;"
        f" without: {raw.result.cycles} cycles,"
        f" {raw.compiled.total_scheduled_instructions()} instrs"
    )
    assert (
        opt.compiled.total_scheduled_instructions()
        <= raw.compiled.total_scheduled_instructions()
    )


def test_ablation_unroll_limit(benchmark):
    """P4's loop-head budget: 2 vs 4 vs 8 absorbed superblock loops."""
    w = get_workload("alt")

    def sweep():
        out = {}
        for limit in (2, 4, 8):
            outcome = run_scheme(
                w.program(), "P4",
                w.train_tape(BENCH_SCALE), w.test_tape(BENCH_SCALE),
                config=scheme("P4", max_loop_heads=limit),
            )
            out[limit] = (
                outcome.result.cycles,
                outcome.compiled.total_scheduled_instructions(),
            )
        return out

    results = run_once(benchmark, sweep)
    print()
    for limit, (cycles, instrs) in results.items():
        print(f"max_loop_heads={limit}: {cycles} cycles, {instrs} instrs")
    assert results[8][1] >= results[2][1]  # more unrolling, more code
